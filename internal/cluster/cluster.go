// Package cluster assembles the paper's testbed in one call: N hosts
// (quad PIII-700 class), a Gigabit Ethernet switch, and on every host
// either the kernel TCP/IP stack or the user-level EMP substrate, plus a
// RAM disk and an fd-tracking descriptor space. The example applications
// and the benchmark harness run on clusters built here, selecting the
// transport by configuration only — the application code is identical,
// which is the paper's point.
package cluster

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ethernet"
	"repro/internal/faults"
	"repro/internal/fdtable"
	"repro/internal/kernel"
	"repro/internal/nic"
	"repro/internal/ramfs"
	"repro/internal/sim"
	"repro/internal/sock"
	"repro/internal/tcpip"
	"repro/internal/telemetry"
)

// Transport selects a node's socket layer.
type Transport int

const (
	// TransportTCP is the kernel stack with default (16 KB) buffers.
	TransportTCP Transport = iota
	// TransportTCPBig is the kernel stack with enlarged buffers.
	TransportTCPBig
	// TransportSubstrate is the user-level sockets-over-EMP substrate.
	TransportSubstrate
)

func (t Transport) String() string {
	switch t {
	case TransportTCP:
		return "TCP"
	case TransportTCPBig:
		return "TCP(256KB)"
	case TransportSubstrate:
		return "Substrate"
	}
	return "?"
}

// Config describes a cluster.
type Config struct {
	Nodes     int
	Transport Transport
	// Substrate holds the substrate options when Transport is
	// TransportSubstrate; nil means core.DefaultOptions.
	Substrate *core.Options
	// TCP overrides the stack config for the TCP transports.
	TCP *tcpip.StackConfig
	// Switch overrides the fabric parameters.
	Switch *ethernet.SwitchConfig
	// Hosts overrides the host cost model.
	Hosts *kernel.Costs
	// Cores per host (the paper's testbed machines are quads).
	Cores int
	// NIC overrides the programmable NIC cost table (substrate only).
	NIC *nic.Config
	// Seed seeds the engine's deterministic random source.
	Seed uint64
	// Faults, when non-nil, injects the plan's link faults at the
	// switch, its NIC/firmware faults at each substrate node's NIC, and
	// schedules its node crashes. Node indices in the plan refer to
	// positions in Nodes; fabric port indices coincide with node
	// indices because New attaches nodes in order (on Failover
	// clusters, where each node attaches twice, the substrate NIC
	// takes the even ports: node i's NIC is fabric port 2i, its TCP
	// stack port 2i+1).
	Faults *faults.Plan
	// Failover gives every node BOTH transports: the substrate (the
	// node's primary Net) and a kernel TCP stack on a separate fabric
	// attachment, so sessions can fail over from EMP to TCP when the
	// substrate's NIC is faulted. The substrate defaults shift to
	// recovery-friendly values (SyncConnect, a dial deadline, the
	// credit-reconciliation sweep) unless Substrate overrides them.
	Failover bool
	// Topology, when non-nil, replaces the single switch with a
	// multi-switch spine-leaf fabric. Station addressing is unchanged
	// (attach order is still node order), so fault-plan node indices
	// and the even/odd Failover port convention carry over.
	Topology *Topology
}

// Topology describes a spine-leaf fabric: Leaves edge switches hosting
// the stations, Spines core switches, and a trunk from every leaf to
// every spine (trunk ids run leaf-major: leaf l's trunk to spine s is
// l*Spines+s). Node i's NIC attaches to leaf i%Leaves; on Failover
// clusters the node's TCP stack attaches to leaf (i+1)%Leaves, so a
// node's two transports enter the fabric on different leaves and even a
// leaf failure leaves the node reachable.
type Topology struct {
	Spines int
	Leaves int
	// ECMPSeed seeds the fabric's path-selection hash; zero borrows the
	// cluster Seed so runs stay reproducible by default.
	ECMPSeed uint64
	// DetectDelay overrides how long failures blackhole before the
	// fabric reroutes (zero: ethernet.DefaultDetectDelay).
	DetectDelay sim.Duration
	// NoReroute freezes the initial forwarding tables — the chaos
	// control proving reroute is what makes failures survivable.
	NoReroute bool
}

// Node is one machine of the cluster.
type Node struct {
	Host *kernel.Host
	Net  sock.Network
	FS   *ramfs.FS
	FD   *fdtable.Space

	// Sub is non-nil on substrate transports.
	Sub *core.Substrate
	// Stack is non-nil on TCP transports.
	Stack *tcpip.Stack

	// Tel is this node's telemetry registry: every layer on the node
	// (substrate or TCP stack, EMP, pollers) feeds it. It survives
	// crash–restart cycles — counters and flight rings accumulate
	// across incarnations, while pull-through sources are replaced by
	// the reborn layers.
	Tel *telemetry.Registry

	// Resume is the node's durable session-resume store: replica state
	// the session layer consults when a reborn listener is asked to
	// resume a stream the dead incarnation owned. It survives restarts
	// (modeling synchronously replicated session metadata).
	Resume *sock.SessionStore

	// Incarnation counts the node's boots, starting at 1. A
	// crash–restart bumps it; the session handshake carries it so peers
	// can tell a reboot from a transient fault.
	Incarnation int

	// boot is the node's registered app bootstrap, re-spawned after
	// every rebirth so listeners resurrect.
	boot func(p *sim.Proc)
}

// Down reports whether the node is currently dead (crashed and not yet
// reborn).
func (n *Node) Down() bool {
	if n.Sub != nil {
		return n.Sub.Dead()
	}
	if n.Stack != nil {
		return n.Stack.Dead()
	}
	return false
}

// Cluster is an assembled testbed. Exactly one of Switch (single-switch
// clusters, the default) and Fabric (Topology clusters) is non-nil.
type Cluster struct {
	Eng    *sim.Engine
	Switch *ethernet.Switch
	Fabric *ethernet.Fabric
	Nodes  []*Node
	Cfg    Config
}

// New assembles a cluster.
func New(cfg Config) *Cluster {
	if cfg.Nodes < 1 {
		cfg.Nodes = 1
	}
	if cfg.Cores < 1 {
		cfg.Cores = 4
	}
	eng := sim.NewEngine()
	if cfg.Seed != 0 {
		eng.Seed(cfg.Seed)
	}
	swCfg := ethernet.DefaultSwitchConfig()
	if cfg.Switch != nil {
		swCfg = *cfg.Switch
	}
	hostCosts := kernel.DefaultCosts()
	if cfg.Hosts != nil {
		hostCosts = *cfg.Hosts
	}
	var (
		sw     *ethernet.Switch
		fb     *ethernet.Fabric
		leaves []*ethernet.Switch
	)
	if cfg.Topology != nil {
		topo := *cfg.Topology
		if topo.Leaves < 1 {
			topo.Leaves = 1
		}
		seed := topo.ECMPSeed
		if seed == 0 {
			seed = cfg.Seed
		}
		fb = ethernet.NewFabric(eng, ethernet.FabricConfig{
			Seed:        seed,
			DetectDelay: topo.DetectDelay,
			NoReroute:   topo.NoReroute,
		})
		for l := 0; l < topo.Leaves; l++ {
			leaves = append(leaves, fb.AddSwitch(fmt.Sprintf("leaf%d", l), swCfg))
		}
		var spines []*ethernet.Switch
		for s := 0; s < topo.Spines; s++ {
			spines = append(spines, fb.AddSwitch(fmt.Sprintf("spine%d", s), swCfg))
		}
		for _, lf := range leaves {
			for _, sp := range spines {
				fb.Connect(lf, sp)
			}
		}
	} else {
		sw = ethernet.NewSwitch(eng, swCfg)
	}
	// nicAt/tcpAt pick each attachment's edge switch: the single switch,
	// or on a fabric the node's leaf — with the Failover TCP stack one
	// leaf over, so a node's transports enter on different leaves.
	nicAt := func(i int) *ethernet.Switch {
		if fb == nil {
			return sw
		}
		return leaves[i%len(leaves)]
	}
	tcpAt := func(i int) *ethernet.Switch {
		if fb == nil {
			return sw
		}
		return leaves[(i+1)%len(leaves)]
	}
	c := &Cluster{Eng: eng, Switch: sw, Fabric: fb, Cfg: cfg}
	for i := 0; i < cfg.Nodes; i++ {
		host := kernel.NewHost(eng, "host", cfg.Cores, hostCosts)
		n := &Node{Host: host, FS: ramfs.New(host), Tel: telemetry.New(),
			Resume: sock.NewSessionStore(), Incarnation: 1}
		// Host objects survive Rebirth, so one registration covers the
		// node's whole lifetime. The source stays silent until the core
		// scheduler is actually exercised, keeping compute-free runs'
		// snapshots unchanged.
		n.Tel.RegisterSource("cpu", cpuTelemetry(host))
		switch {
		case cfg.Failover:
			nc := nic.New(eng, "nic", c.nicConfig())
			nc.Attach(nicAt(i))
			if cfg.Faults != nil {
				nc.SetFaults(cfg.Faults, i)
			}
			n.Sub = core.New(eng, host, nc, c.subOptions())
			n.Sub.SetTelemetry(n.Tel)
			n.Net = n.Sub
			n.Stack = tcpip.NewStack(eng, host, tcpAt(i), c.stackConfig())
			n.Stack.SetTelemetry(n.Tel)
		case cfg.Transport == TransportSubstrate:
			nc := nic.New(eng, "nic", c.nicConfig())
			nc.Attach(nicAt(i))
			if cfg.Faults != nil {
				nc.SetFaults(cfg.Faults, i)
			}
			n.Sub = core.New(eng, host, nc, c.subOptions())
			n.Sub.SetTelemetry(n.Tel)
			n.Net = n.Sub
		default:
			n.Stack = tcpip.NewStack(eng, host, nicAt(i), c.stackConfig())
			n.Stack.SetTelemetry(n.Tel)
			n.Net = n.Stack
		}
		n.FD = fdtable.New(n.Net, n.FS)
		c.Nodes = append(c.Nodes, n)
	}
	if cfg.Faults != nil {
		if fb != nil {
			// Frame-level clauses evaluate once per frame at the ingress
			// leaf; link and switch clauses land on the fabric itself.
			for _, s := range fb.Switches() {
				s.SetFaults(cfg.Faults)
			}
			fb.ApplyFaults(cfg.Faults)
		} else {
			sw.SetFaults(cfg.Faults)
		}
		for _, cr := range cfg.Faults.Crashes {
			cr := cr
			eng.At(sim.Time(cr.At), func() { c.Kill(cr.Node) })
		}
		for _, rs := range cfg.Faults.Restarts {
			rs := rs
			var refs []flightRef
			eng.At(sim.Time(rs.At), func() {
				refs = c.hostDown(rs.Node)
				c.Kill(rs.Node)
			})
			eng.At(sim.Time(rs.At+rs.Downtime), func() {
				c.restartNode(rs.Node, refs)
			})
		}
	}
	if fb != nil {
		c.watchRoutes()
	}
	return c
}

// watchRoutes turns fabric route events into per-connection
// flight-recorder entries, so a reset dump shows which path a
// connection died on or moved to: "link-down"/"switch-down" when the
// connection's path contained the failed element (or the failure cut
// its endpoints apart), "reroute" when a detected failure moved it to a
// surviving path, "path-change" for any other recompute that moved it
// (e.g. a link coming back). Recording is host bookkeeping — no
// simulated time — and runs in node then sorted-connection order, so
// the records are deterministic.
func (c *Cluster) watchRoutes() {
	fb := c.Fabric
	fb.Subscribe(func(ev ethernet.RouteEvent) {
		now := c.Eng.Now()
		elem := fmt.Sprintf("trunk %d", ev.Link)
		if ev.Switch >= 0 {
			elem = fmt.Sprintf("switch %d", ev.Switch)
		}
		for _, n := range c.Nodes {
			tel := n.Tel
			visit := func(id string, local, peer ethernet.Addr, flow uint32) {
				before, okB := fb.PathBefore(local, peer, flow)
				after, okA := fb.Path(local, peer, flow)
				changed := okB != okA || !equalPath(before, after)
				failure := ev.Kind == "link-down" || ev.Kind == "switch-down"
				onFailed := failure && okB && pathHits(fb, before, ev)
				switch {
				case onFailed || (failure && okB && !okA):
					tel.Flight(id).Recordf(now, ev.Kind, "%s on path %s",
						elem, ethernet.PathString(before, okB))
					if ev.Rerouted && changed && okA {
						tel.Flight(id).Recordf(now, "reroute", "%s -> %s epoch=%d",
							ethernet.PathString(before, okB), ethernet.PathString(after, okA), ev.Epoch)
					}
				case changed:
					tel.Flight(id).Recordf(now, "path-change", "%s -> %s epoch=%d",
						ethernet.PathString(before, okB), ethernet.PathString(after, okA), ev.Epoch)
				}
			}
			if n.Sub != nil {
				n.Sub.VisitConns(visit)
			}
			if n.Stack != nil {
				n.Stack.VisitConns(visit)
			}
		}
	})
}

func equalPath(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// pathHits reports whether the failed element the event announces lies
// on the given trunk path.
func pathHits(fb *ethernet.Fabric, path []int, ev ethernet.RouteEvent) bool {
	for _, id := range path {
		if ev.Link >= 0 && id == ev.Link {
			return true
		}
		if ev.Switch >= 0 {
			a, b := fb.Trunks()[id].Ends()
			if a.ID() == ev.Switch || b.ID() == ev.Switch {
				return true
			}
		}
	}
	return false
}

// FailoverOptions is the substrate configuration Failover clusters
// default to: the paper's DS_DA_UQ data path plus the recovery
// machinery — synchronous connect (a dial must learn its fate before
// the session layer can fail over), a dial deadline, keepalive probing
// so a dead peer is detected on idle connections, and the
// credit-reconciliation sweep repairing grants lost to NIC faults.
func FailoverOptions() core.Options {
	o := core.DefaultOptions()
	o.SyncConnect = true
	o.DialDeadline = 10 * sim.Millisecond
	o.DialJitter = 0.5
	o.KeepaliveIdle = 5 * sim.Millisecond
	o.CreditSyncAfter = 1 * sim.Millisecond
	return o
}

// nicConfig resolves the NIC cost table a (re)built node uses.
func (c *Cluster) nicConfig() nic.Config {
	if c.Cfg.NIC != nil {
		return *c.Cfg.NIC
	}
	return nic.DefaultConfig()
}

// subOptions resolves the substrate options a (re)built node uses.
func (c *Cluster) subOptions() core.Options {
	if c.Cfg.Substrate != nil {
		return *c.Cfg.Substrate
	}
	if c.Cfg.Failover {
		return FailoverOptions()
	}
	return core.DefaultOptions()
}

// stackConfig resolves the TCP stack config a (re)built node uses.
func (c *Cluster) stackConfig() tcpip.StackConfig {
	if c.Cfg.TCP != nil {
		return *c.Cfg.TCP
	}
	if !c.Cfg.Failover && c.Cfg.Transport == TransportTCPBig {
		return tcpip.BigBufferConfig()
	}
	return tcpip.DefaultStackConfig()
}

// SetBoot registers node i's app bootstrap: the function a restart
// re-spawns after rebuilding the node's transports, so listeners
// resurrect. The driver spawns the first incarnation itself; every
// rebirth spawns fn again as a fresh process.
func (c *Cluster) SetBoot(i int, fn func(p *sim.Proc)) {
	if i < 0 || i >= len(c.Nodes) {
		return
	}
	c.Nodes[i].boot = fn
}

// Rebirth rebuilds crashed node i from scratch at the same fabric
// address under a bumped incarnation number: a fresh NIC takes over the
// dead incarnation's switch port, fresh EMP endpoint, substrate and TCP
// stack are built on it, telemetry sources re-register on the node's
// surviving registry (replacing the dead ledger), the descriptor space
// is rebuilt, and the registered app bootstrap is re-spawned. The
// host's RAM disk and telemetry history survive, as disk and a
// monitoring plane would.
func (c *Cluster) Rebirth(i int) {
	if i < 0 || i >= len(c.Nodes) {
		return
	}
	n := c.Nodes[i]
	n.Incarnation++
	if n.Sub != nil {
		port := n.Sub.EP.NIC.Port()
		nc := nic.New(c.Eng, "nic", c.nicConfig())
		nc.AttachPort(port)
		if c.Cfg.Faults != nil {
			nc.SetFaults(c.Cfg.Faults, i)
		}
		so := c.subOptions()
		// Message IDs must not repeat across incarnations: peers
		// deduplicate by (src, msgID), and their completed-message state
		// survives this node's death. Epoch 0 is the first boot, so
		// restart-free runs keep the historical ID sequence exactly.
		so.BootEpoch = uint64(n.Incarnation - 1)
		n.Sub = core.New(c.Eng, n.Host, nc, so)
		n.Sub.SetTelemetry(n.Tel)
	}
	if n.Stack != nil {
		n.Stack = tcpip.NewStackOnPort(c.Eng, n.Host, n.Stack.Port(), c.stackConfig())
		n.Stack.SetTelemetry(n.Tel)
	}
	if n.Sub != nil {
		n.Net = n.Sub
	} else {
		n.Net = n.Stack
	}
	n.FD = fdtable.New(n.Net, n.FS)
	n.Tel.Gauge("node", "incarnation").Set(int64(n.Incarnation))
	if n.boot != nil {
		boot := n.boot
		c.Eng.Spawn(fmt.Sprintf("boot%d", i), boot)
	}
}

// cpuTelemetry reports the host's per-core scheduler stats: cumulative
// busy nanoseconds, completed compute charges, and utilization in basis
// points per core. It emits nothing until the core scheduler has served
// at least one charge, so workloads that never opt into core-scheduled
// compute keep their telemetry snapshots byte-identical.
func cpuTelemetry(h *kernel.Host) func() []telemetry.Stat {
	return func() []telemetry.Stat {
		cpu := h.CPU()
		if !cpu.Used() {
			return nil
		}
		out := make([]telemetry.Stat, 0, 3*cpu.N())
		for i := 0; i < cpu.N(); i++ {
			out = append(out,
				telemetry.Stat{Name: fmt.Sprintf("core%d_busy_ns", i), Value: int64(cpu.BusyTime(i))},
				telemetry.Stat{Name: fmt.Sprintf("core%d_runs", i), Value: cpu.Runs(i)},
				telemetry.Stat{Name: fmt.Sprintf("core%d_util_bp", i), Value: int64(cpu.Utilization(i) * 10000)},
			)
		}
		return out
	}
}

// flightRef names one flight-recorder ring (registry + connection id)
// affected by a host going down, so the restart half of the cycle can
// record its recovery into the same rings.
type flightRef struct {
	tel *telemetry.Registry
	id  string
}

// hostDown records "host-down" into the flight ring of every connection
// touching node i — the node's own connections and every remote
// connection whose peer address belongs to it — plus the node's own
// host-level ring, returning the affected refs for the restart event.
// Recording is host bookkeeping (no simulated time) and runs in node
// then sorted-connection order, so the records are deterministic.
func (c *Cluster) hostDown(i int) []flightRef {
	if i < 0 || i >= len(c.Nodes) {
		return nil
	}
	now := c.Eng.Now()
	n := c.Nodes[i]
	dead := make(map[ethernet.Addr]bool, 2)
	if n.Sub != nil {
		dead[n.Sub.Addr()] = true
	}
	if n.Stack != nil {
		dead[n.Stack.Addr()] = true
	}
	refs := []flightRef{{n.Tel, fmt.Sprintf("node%d/host", i)}}
	for j, m := range c.Nodes {
		tel := m.Tel
		visit := func(id string, local, peer ethernet.Addr, flow uint32) {
			if j != i && !dead[peer] {
				return
			}
			refs = append(refs, flightRef{tel, id})
		}
		if m.Sub != nil {
			m.Sub.VisitConns(visit)
		}
		if m.Stack != nil {
			m.Stack.VisitConns(visit)
		}
	}
	for _, ref := range refs {
		ref.tel.Flight(ref.id).Recordf(now, "host-down",
			"node %d crashed (incarnation %d dying)", i, n.Incarnation)
	}
	return refs
}

// restartNode completes a crash–restart cycle: rebuild the node and
// record "host-restart" into every ring the crash touched.
func (c *Cluster) restartNode(i int, refs []flightRef) {
	c.Rebirth(i)
	now := c.Eng.Now()
	n := c.Nodes[i]
	for _, ref := range refs {
		ref.tel.Flight(ref.id).Recordf(now, "host-restart",
			"node %d back (incarnation %d)", i, n.Incarnation)
	}
}

// nodeNet is a live view of one node's transport, implementing
// sock.Network by resolving the node's current substrate or stack at
// every call. Session targets hold these instead of raw transport
// pointers, so a target stays valid when a crash–restart replaces the
// node's transports with a reborn incarnation.
type nodeNet struct {
	c   *Cluster
	idx int
	tcp bool
}

func (v nodeNet) net() sock.Network {
	n := v.c.Nodes[v.idx]
	if v.tcp {
		return n.Stack
	}
	return n.Sub
}

func (v nodeNet) Listen(p *sim.Proc, port, backlog int) (sock.Listener, error) {
	return v.net().Listen(p, port, backlog)
}

func (v nodeNet) Dial(p *sim.Proc, addr sock.Addr, port int) (sock.Conn, error) {
	return v.net().Dial(p, addr, port)
}

func (v nodeNet) Addr() sock.Addr { return v.net().Addr() }

// Targets builds the failover dial list for a session from node client
// to node server: the substrate first, kernel TCP second. Both nodes
// must come from a Failover cluster. The two targets carry different
// fabric addresses because each transport has its own attachment; both
// are live views that track the nodes across crash–restart cycles.
func (c *Cluster) Targets(client, server, port int) []sock.Target {
	cn, sn := c.Nodes[client], c.Nodes[server]
	var out []sock.Target
	if cn.Sub != nil && sn.Sub != nil {
		out = append(out, sock.Target{Name: "substrate",
			Net: nodeNet{c, client, false}, Addr: sn.Sub.Addr(), Port: port})
	}
	if cn.Stack != nil && sn.Stack != nil {
		out = append(out, sock.Target{Name: "tcp",
			Net: nodeNet{c, client, true}, Addr: sn.Stack.Addr(), Port: port})
	}
	return out
}

// TelemetrySnapshot merges every node's registry (in node-index order)
// with the engine's scheduler counter and the switch's fault-injection
// counters into one cluster-wide deterministic snapshot.
func (c *Cluster) TelemetrySnapshot() *telemetry.Snapshot {
	agg := c.TelemetryAggregate()
	return agg.Snapshot()
}

// TelemetryAggregate folds the per-node registries into a fresh
// cluster-level registry (node order, so the result is deterministic)
// and adds the cluster-scoped sources: sim wakeups and switch faults.
func (c *Cluster) TelemetryAggregate() *telemetry.Registry {
	agg := telemetry.New()
	for _, n := range c.Nodes {
		agg.Merge(n.Tel)
	}
	agg.RegisterSource("sim", func() []telemetry.Stat {
		return []telemetry.Stat{{Name: "wakeups", Value: c.Eng.Wakeups()}}
	})
	if c.Switch != nil {
		agg.RegisterSource("switch", func() []telemetry.Stat {
			fs := c.Switch.FaultStats()
			return []telemetry.Stat{
				{Name: "fault_drops", Value: fs.Drops},
				{Name: "fault_partition_drops", Value: fs.PartitionDrops},
				{Name: "fault_dups", Value: fs.Dups},
				{Name: "fault_corruptions", Value: fs.Corruptions},
				{Name: "fault_reorders", Value: fs.Reorders},
			}
		})
	}
	if c.Fabric != nil {
		agg.RegisterSource("fabric", func() []telemetry.Stat {
			fb := c.Fabric
			fs := fb.FaultStats()
			stats := []telemetry.Stat{
				{Name: "forwards", Value: fb.Forwards()},
				{Name: "reroutes", Value: fb.Reroutes()},
				{Name: "link_downs", Value: fb.LinkDowns()},
				{Name: "switch_deaths", Value: fb.SwitchDeaths()},
				{Name: "route_drops", Value: fb.RouteDrops()},
				{Name: "fault_drops", Value: fs.Drops},
				{Name: "fault_partition_drops", Value: fs.PartitionDrops},
				{Name: "fault_dups", Value: fs.Dups},
				{Name: "fault_corruptions", Value: fs.Corruptions},
				{Name: "fault_reorders", Value: fs.Reorders},
			}
			for _, t := range fb.Trunks() {
				fab, fba := t.Forwards()
				dab, dba := t.Drops()
				stats = append(stats,
					telemetry.Stat{Name: fmt.Sprintf("trunk%d_forwards", t.ID()), Value: fab + fba},
					telemetry.Stat{Name: fmt.Sprintf("trunk%d_drops", t.ID()), Value: dab + dba},
				)
			}
			return stats
		})
	}
	return agg
}

// FlightDumps collects every captured flight-recorder dump across the
// cluster, in node-index order.
func (c *Cluster) FlightDumps() []telemetry.Dump {
	var out []telemetry.Dump
	for _, n := range c.Nodes {
		out = append(out, n.Tel.Dumps()...)
	}
	return out
}

// Drain gracefully quiesces this node's transport: new connects are
// refused, live sockets drain out bounded by deadline, and the
// post-drain resource audit's findings (if any) come back as the error.
func (n *Node) Drain(p *sim.Proc, deadline sim.Time) error {
	var err error
	if n.Sub != nil {
		err = n.Sub.Drain(p, deadline)
	}
	if n.Stack != nil {
		if e := n.Stack.Drain(p, deadline); err == nil {
			err = e
		}
	}
	return err
}

// Kill crashes node i: its protocol state dies instantly (no farewell
// messages) and its NIC stops accepting frames, as with a power loss.
// Out of range is a no-op; killing twice is harmless.
func (c *Cluster) Kill(i int) {
	if i < 0 || i >= len(c.Nodes) {
		return
	}
	n := c.Nodes[i]
	if n.Sub != nil {
		n.Sub.Kill()
	}
	if n.Stack != nil {
		n.Stack.Kill()
	}
}

// NewTCP builds an n-node kernel-TCP cluster with default buffers.
func NewTCP(n int) *Cluster {
	return New(Config{Nodes: n, Transport: TransportTCP})
}

// NewTCPBig builds an n-node kernel-TCP cluster with enlarged buffers.
func NewTCPBig(n int) *Cluster {
	return New(Config{Nodes: n, Transport: TransportTCPBig})
}

// NewSubstrate builds an n-node substrate cluster with the given
// options (nil means the paper's default DS_DA_UQ configuration).
func NewSubstrate(n int, opts *core.Options) *Cluster {
	return New(Config{Nodes: n, Transport: TransportSubstrate, Substrate: opts})
}

// Run executes the simulation until the event queue drains or limit is
// reached, returning the final virtual time.
func (c *Cluster) Run(limit sim.Duration) sim.Time {
	return c.Eng.RunUntil(sim.Time(limit))
}

// Addr reports node i's fabric address.
func (c *Cluster) Addr(i int) sock.Addr { return c.Nodes[i].Net.Addr() }
