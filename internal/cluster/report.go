package cluster

import (
	"fmt"
	"strings"
)

// Report summarizes the cluster's counters after a run: per-node host
// and protocol activity plus fabric totals. The per-experiment CLIs
// print it under -stats; tests use it to assert resource accounting.
func (c *Cluster) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster: %d nodes, transport %v\n", len(c.Nodes), c.Cfg.Transport)
	if c.Fabric != nil {
		c.fabricReport(&b)
	} else {
		fmt.Fprintf(&b, "fabric: %d frames forwarded, %d dropped\n", c.Switch.Forwards(), c.Switch.Drops())
		if fs := c.Switch.FaultStats(); fs.Total() > 0 {
			fmt.Fprintf(&b, "fabric faults: %v\n", fs)
		}
	}
	for i, n := range c.Nodes {
		fmt.Fprintf(&b, "node %d:\n", i)
		if n.Incarnation > 1 {
			fmt.Fprintf(&b, "  incarnation: %d\n", n.Incarnation)
		}
		fmt.Fprintf(&b, "  host: %d syscalls, %d interrupts, %d ctx switches, %d bytes copied\n",
			n.Host.Syscalls.Value, n.Host.Interrupts.Value,
			n.Host.CtxSwitches.Value, n.Host.CopiedBytes.Value)
		if n.Sub != nil {
			s := n.Sub.EP.Stats()
			fmt.Fprintf(&b, "  emp: %d sends, %d recvs, %d delivered, %d uq hits, %d drops, %d rexmits, %d failed\n",
				s.SendsPosted, s.RecvsPosted, s.MsgsDelivered, s.UnexpectedHit,
				s.FramesDropped, s.Retransmits, s.SendsFailed)
			fmt.Fprintf(&b, "  substrate: %d connects, %d accepts, %d msgs, %d explicit acks, %d piggybacked, %d credit stalls, %d rendezvous, %d closes\n",
				n.Sub.ConnectsSent.Value, n.Sub.ConnsAccepted.Value,
				n.Sub.MsgsSent.Value, n.Sub.ExplicitAcks.Value,
				n.Sub.PiggybackAcks.Value, n.Sub.CreditStalls.Value,
				n.Sub.RendezvousOps.Value, n.Sub.ClosesSent.Value)
			fmt.Fprintf(&b, "  pin cache: %d hits, %d misses\n",
				n.Sub.EP.CacheHits.Value, n.Sub.EP.CacheMisses.Value)
			if n.Sub.ConnsFailed.Value > 0 || n.Sub.KeepalivesSent.Value > 0 ||
				n.Sub.DialRetries.Value > 0 || n.Sub.EP.NIC.FCSErrors.Value > 0 {
				fmt.Fprintf(&b, "  failures: %d conns failed, %d keepalives sent, %d dial retries, %d FCS drops\n",
					n.Sub.ConnsFailed.Value, n.Sub.KeepalivesSent.Value,
					n.Sub.DialRetries.Value, n.Sub.EP.NIC.FCSErrors.Value)
			}
		}
		if n.Stack != nil {
			fmt.Fprintf(&b, "  tcp: %d segs in, %d out, %d rexmits, %d fast rexmits, %d delayed acks, %d interrupts, %d ooo drops\n",
				n.Stack.SegsIn.Value, n.Stack.SegsOut.Value,
				n.Stack.Rexmits.Value, n.Stack.FastRetransmits.Value,
				n.Stack.DelayedAcks.Value, n.Stack.Interrupts.Value,
				n.Stack.DroppedSegs.Value)
			if n.Stack.ChecksumDrops.Value > 0 {
				fmt.Fprintf(&b, "  tcp faults: %d checksum drops\n", n.Stack.ChecksumDrops.Value)
			}
		}
		if n.FS != nil && (n.FS.Reads.Value > 0 || n.FS.Writes.Value > 0) {
			fmt.Fprintf(&b, "  fs: %d reads (%d bytes), %d writes (%d bytes)\n",
				n.FS.Reads.Value, n.FS.BytesRead.Value,
				n.FS.Writes.Value, n.FS.BytesWritten.Value)
		}
	}
	if blocked := c.Eng.BlockedProcs(); len(blocked) > 0 {
		fmt.Fprintf(&b, "blocked processes (%d):\n", len(blocked))
		for _, s := range blocked {
			fmt.Fprintf(&b, "  %s\n", s)
		}
	}
	return b.String()
}

// fabricReport renders the multi-switch fabric's per-switch and
// per-trunk table: forwards, drops (fault-injected, no-route, and
// trunk blackhole), and the reroute history.
func (c *Cluster) fabricReport(b *strings.Builder) {
	fb := c.Fabric
	var leaves, spines int
	for _, s := range fb.Switches() {
		if strings.HasPrefix(s.Name(), "spine") {
			spines++
		} else {
			leaves++
		}
	}
	fmt.Fprintf(b, "fabric: %d leaves + %d spines, %d trunks, %d frames forwarded, %d reroutes\n",
		leaves, spines, len(fb.Trunks()), fb.Forwards(), fb.Reroutes())
	for _, s := range fb.Switches() {
		state := ""
		if s.Dead() {
			state = " DEAD"
		}
		fmt.Fprintf(b, "  switch %s: %d forwarded, %d dropped, %d no-route%s",
			s.Name(), s.Forwards(), s.Drops(), s.RouteDrops(), state)
		if fs := s.FaultStats(); fs.Total() > 0 {
			fmt.Fprintf(b, ", faults: %v", fs)
		}
		fmt.Fprintf(b, "\n")
	}
	for _, t := range fb.Trunks() {
		fab, fba := t.Forwards()
		dab, dba := t.Drops()
		state := ""
		if fb.TrunkDown(t.ID()) {
			state = " DOWN"
		}
		fmt.Fprintf(b, "  %s: %d carried, %d blackholed%s\n", t, fab+fba, dab+dba, state)
	}
	if fb.LinkDowns() > 0 || fb.SwitchDeaths() > 0 || fb.RouteDrops() > 0 {
		fmt.Fprintf(b, "fabric events: %d link downs, %d switch deaths, %d route drops\n",
			fb.LinkDowns(), fb.SwitchDeaths(), fb.RouteDrops())
	}
}
