package cluster

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/sock"
)

func TestTransportsInstantiateCorrectly(t *testing.T) {
	tcp := NewTCP(2)
	if tcp.Nodes[0].Stack == nil || tcp.Nodes[0].Sub != nil {
		t.Fatal("TCP cluster wired wrong")
	}
	sub := NewSubstrate(2, nil)
	if sub.Nodes[0].Sub == nil || sub.Nodes[0].Stack != nil {
		t.Fatal("substrate cluster wired wrong")
	}
	if sub.Nodes[0].FD == nil || sub.Nodes[0].FS == nil {
		t.Fatal("fd space / fs missing")
	}
}

func TestAddressesAreDistinct(t *testing.T) {
	c := NewTCP(4)
	seen := map[sock.Addr]bool{}
	for i := range c.Nodes {
		a := c.Addr(i)
		if seen[a] {
			t.Fatalf("duplicate address %v", a)
		}
		seen[a] = true
	}
}

// echo runs a connect/echo/close exchange over the cluster's transport.
func echo(t *testing.T, c *Cluster) sim.Duration {
	t.Helper()
	var rtt sim.Duration
	c.Eng.Spawn("server", func(p *sim.Proc) {
		l, err := c.Nodes[0].Net.Listen(p, 7, 4)
		if err != nil {
			t.Errorf("listen: %v", err)
			return
		}
		conn, err := l.Accept(p)
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		if _, _, err := sock.ReadFull(p, conn, 64); err != nil {
			t.Errorf("read: %v", err)
			return
		}
		conn.Write(p, 64, nil)
		conn.Close(p)
		l.Close(p)
	})
	c.Eng.Spawn("client", func(p *sim.Proc) {
		p.Sleep(10 * sim.Microsecond)
		conn, err := c.Nodes[1].Net.Dial(p, c.Addr(0), 7)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		start := p.Now()
		conn.Write(p, 64, nil)
		sock.ReadFull(p, conn, 64)
		rtt = p.Now().Sub(start)
		conn.Close(p)
	})
	c.Run(10 * sim.Second)
	return rtt
}

func TestEchoOverEveryTransport(t *testing.T) {
	dg := core.DatagramOptions()
	for _, tc := range []struct {
		name  string
		build func() *Cluster
	}{
		{"tcp", func() *Cluster { return NewTCP(2) }},
		{"tcp-big", func() *Cluster { return NewTCPBig(2) }},
		{"substrate-ds", func() *Cluster { return NewSubstrate(2, nil) }},
		{"substrate-dg", func() *Cluster { return NewSubstrate(2, &dg) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if rtt := echo(t, tc.build()); rtt <= 0 {
				t.Fatal("echo did not complete")
			}
		})
	}
}

func TestSubstrateEchoFasterThanTCP(t *testing.T) {
	tcp := echo(t, NewTCP(2))
	ds := echo(t, NewSubstrate(2, nil))
	if ds >= tcp {
		t.Fatalf("substrate echo %v should beat TCP %v", ds, tcp)
	}
}

func TestConfigDefaultsClamp(t *testing.T) {
	c := New(Config{Nodes: 0, Transport: TransportTCP})
	if len(c.Nodes) != 1 {
		t.Fatalf("nodes = %d, want clamped to 1", len(c.Nodes))
	}
	if c.Nodes[0].Host.Cores() != 4 {
		t.Fatalf("cores = %d, want default 4", c.Nodes[0].Host.Cores())
	}
}

func TestSeedPropagates(t *testing.T) {
	a := New(Config{Nodes: 1, Transport: TransportTCP, Seed: 7})
	b := New(Config{Nodes: 1, Transport: TransportTCP, Seed: 7})
	if a.Eng.Rand().Uint64() != b.Eng.Rand().Uint64() {
		t.Fatal("same seed should produce the same stream")
	}
}
