package cluster

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/sock"
)

func TestReportCoversBothTransports(t *testing.T) {
	sub := NewSubstrate(2, nil)
	echoQuiet(sub)
	rep := sub.Report()
	for _, want := range []string{"transport Substrate", "emp:", "substrate:", "pin cache:", "frames forwarded"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("substrate report missing %q:\n%s", want, rep)
		}
	}
	if strings.Contains(rep, "tcp:") {
		t.Fatal("substrate report mentions tcp counters")
	}

	tcp := NewTCP(2)
	echoQuiet(tcp)
	rep = tcp.Report()
	for _, want := range []string{"transport TCP", "tcp:", "segs in"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("tcp report missing %q:\n%s", want, rep)
		}
	}
	if strings.Contains(rep, "emp:") {
		t.Fatal("tcp report mentions emp counters")
	}
}

func TestReportReflectsTraffic(t *testing.T) {
	c := NewTCP(2)
	echoQuiet(c)
	rep := c.Report()
	// Traffic flowed, so segment counters must be nonzero and fabric
	// forwarding recorded.
	if strings.Contains(rep, "0 segs in, 0 out") {
		t.Fatalf("report shows no traffic:\n%s", rep)
	}
	if strings.Contains(rep, "fabric: 0 frames forwarded") {
		t.Fatalf("no fabric activity recorded:\n%s", rep)
	}
}

// echoQuiet runs a small exchange to populate counters.
func echoQuiet(c *Cluster) {
	c.Eng.Spawn("server", func(p *sim.Proc) {
		l, err := c.Nodes[0].Net.Listen(p, 7, 4)
		if err != nil {
			return
		}
		conn, err := l.Accept(p)
		if err != nil {
			return
		}
		sock.ReadFull(p, conn, 64)
		conn.Write(p, 64, nil)
		conn.Close(p)
	})
	c.Eng.Spawn("client", func(p *sim.Proc) {
		p.Sleep(10 * sim.Microsecond)
		conn, err := c.Nodes[1].Net.Dial(p, c.Addr(0), 7)
		if err != nil {
			return
		}
		conn.Write(p, 64, nil)
		sock.ReadFull(p, conn, 64)
		conn.Close(p)
	})
	c.Run(10 * sim.Second)
}
