package integration

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/sock"
)

// traceRun executes one substrate echo with tracing into a buffer.
func traceRun() string {
	var buf bytes.Buffer
	c := cluster.NewSubstrate(2, nil)
	c.Eng.SetTrace(&buf)
	c.Eng.Spawn("server", func(p *sim.Proc) {
		l, _ := c.Nodes[0].Net.Listen(p, 80, 4)
		conn, err := l.Accept(p)
		if err != nil {
			return
		}
		sock.ReadFull(p, conn, 64)
		conn.Write(p, 64, nil)
		conn.Close(p)
	})
	c.Eng.Spawn("client", func(p *sim.Proc) {
		p.Sleep(10 * sim.Microsecond)
		conn, err := c.Nodes[1].Net.Dial(p, c.Addr(0), 80)
		if err != nil {
			return
		}
		conn.Write(p, 64, nil)
		sock.ReadFull(p, conn, 64)
		conn.Close(p)
	})
	c.Run(10 * sim.Second)
	return buf.String()
}

// TestGoldenTraceSequence asserts the causal order of the protocol's
// key events for one echo — a deterministic regression net over the
// whole connection life cycle.
func TestGoldenTraceSequence(t *testing.T) {
	trace := traceRun()
	// Events that must appear, in this order.
	sequence := []string{
		"connect 1 -> 0:80",  // client sends the connection request
		"tx data dst=0 tag=", // request (or racing data) on the wire
		"accept 0 <- 1",      // server accepts
		"close",              // one side closes
	}
	pos := 0
	for _, want := range sequence {
		idx := strings.Index(trace[pos:], want)
		if idx < 0 {
			t.Fatalf("trace missing %q after position %d:\n%s", want, pos, trace)
		}
		pos += idx
	}
	// No retransmissions or drops in a clean echo.
	for _, banned := range []string{"REXMIT", "DROP"} {
		if strings.Contains(trace, banned) {
			t.Fatalf("clean echo produced %q events:\n%s", banned, trace)
		}
	}
}

// TestTraceDeterministic: two identical runs produce byte-identical
// traces — the strongest statement of the simulator's determinism.
func TestTraceDeterministic(t *testing.T) {
	a, b := traceRun(), traceRun()
	if a != b {
		t.Fatalf("traces diverged:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
	if len(a) == 0 {
		t.Fatal("no trace produced")
	}
}

// TestTraceDisabledCostsNothing: without a sink no events are recorded.
func TestTraceDisabledCostsNothing(t *testing.T) {
	c := cluster.NewSubstrate(2, nil)
	c.Eng.Spawn("client", func(p *sim.Proc) {
		c.Nodes[1].Net.Dial(p, c.Addr(0), 80)
	})
	c.Run(sim.Second)
	if c.Eng.TraceCount() != 0 {
		t.Fatalf("trace count %d with no sink", c.Eng.TraceCount())
	}
}
