package integration

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/audit"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ethernet"
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/sock"
)

// chaosSeeds is how many independent randomized plans each chaos test
// runs; every plan is a pure function of its seed, so a failure
// reproduces by rerunning that seed alone.
const chaosSeeds = 5

// chaosFailureBound mirrors core's failure-detection bound: the EMP
// retry budget (MaxRetries timeouts at up to MaxRTO each) plus slack.
const chaosFailureBound = 500 * sim.Millisecond

// checkSubstrateLeaks asserts that every surviving substrate node has
// drained its socket table, unposted every descriptor (§5.3), and —
// after purging stale unexpected-queue entries — holds no orphaned
// messages. The host-wide resource auditor then cross-checks every pool
// gauge and attribution it knows about.
func checkSubstrateLeaks(t *testing.T, c *cluster.Cluster) {
	t.Helper()
	for i, n := range c.Nodes {
		if n.Sub == nil || n.Sub.Dead() {
			continue
		}
		if k := n.Sub.ActiveSockets(); k != 0 {
			t.Errorf("node %d leaked %d active sockets", i, k)
		}
		if k := n.Sub.EP.PrepostedDescriptors(); k != 0 {
			t.Errorf("node %d leaked %d preposted descriptors", i, k)
		}
		n.Sub.PurgeStale()
		if k := n.Sub.EP.UnexpectedQueued(); k != 0 {
			t.Errorf("node %d leaked %d unexpected-queue entries", i, k)
		}
	}
	if rep := audit.Cluster(c); !rep.Clean() {
		t.Errorf("resource audit:\n%s", rep)
	}
}

// TestChaosFTPUnderRandomPlans runs the FTP transfer over the substrate
// under five independent randomized fault plans (low-grade uniform loss,
// duplication, corruption and reordering plus windowed bursts) and
// requires byte-exact delivery every time. The FCS counters prove the
// corruption path fired and that no corrupted frame reached EMP.
func TestChaosFTPUnderRandomPlans(t *testing.T) {
	const fileSize = 1 << 20
	var total ethernet.FaultStats
	for seed := uint64(1); seed <= chaosSeeds; seed++ {
		pl := faults.RandomPlan(seed, 2, 2*sim.Second)
		c := cluster.New(cluster.Config{
			Nodes:     2,
			Transport: cluster.TransportSubstrate,
			Seed:      seed,
			Faults:    pl,
		})
		res := apps.RunFTP(c, fileSize)
		if res.Err != nil {
			t.Fatalf("seed %d: ftp under chaos: %v", seed, res.Err)
		}
		if size, _ := c.Nodes[1].FS.Stat("copy.bin"); size != fileSize {
			t.Fatalf("seed %d: file corrupted: %d of %d bytes", seed, size, fileSize)
		}
		if res.Elapsed > 60*sim.Second {
			t.Fatalf("seed %d: transfer took %v, recovery unbounded", seed, res.Elapsed)
		}
		fs := c.Switch.FaultStats()
		total.Add(fs)
		var fcs int64
		for _, n := range c.Nodes {
			fcs += n.Sub.EP.NIC.FCSErrors.Value
		}
		if fs.Corruptions > 0 && fcs == 0 {
			t.Fatalf("seed %d: %d frames corrupted but none dropped by FCS", seed, fs.Corruptions)
		}
		checkSubstrateLeaks(t, c)
	}
	// Across five plans every injection mechanism must have fired.
	if total.Drops == 0 || total.Dups == 0 || total.Corruptions == 0 || total.Reorders == 0 {
		t.Fatalf("fault coverage incomplete across seeds: %+v", total)
	}
}

// TestChaosKVStoreOverTCPUnderRandomPlans drives the kv workload
// through the kernel stack's full recovery machinery under randomized
// plans; the checksum-drop counter proves corrupted segments were
// rejected before reaching TCP payload.
func TestChaosKVStoreOverTCPUnderRandomPlans(t *testing.T) {
	var total ethernet.FaultStats
	var checksumDrops int64
	for seed := uint64(1); seed <= chaosSeeds; seed++ {
		pl := faults.RandomPlan(seed, 4, sim.Second)
		c := cluster.New(cluster.Config{
			Nodes:     4,
			Transport: cluster.TransportTCP,
			Seed:      seed,
			Faults:    pl,
		})
		cfg := apps.DefaultKVConfig(1024)
		cfg.OpsPerClient = 25
		res := apps.RunKVStore(c, cfg)
		if res.Err != nil {
			t.Fatalf("seed %d: kv under chaos: %v", seed, res.Err)
		}
		if want := cfg.Clients * cfg.OpsPerClient; res.Ops != want {
			t.Fatalf("seed %d: ops = %d, want %d", seed, res.Ops, want)
		}
		total.Add(c.Switch.FaultStats())
		for _, n := range c.Nodes {
			checksumDrops += n.Stack.ChecksumDrops.Value
		}
	}
	if total.Corruptions == 0 {
		t.Fatal("no frames corrupted across seeds; plan generation broken")
	}
	if checksumDrops == 0 {
		t.Fatal("corrupted frames reached TCP without a checksum drop")
	}
}

// TestChaosWebSurvivesLinkFlaps runs the web workload while one client's
// link flaps repeatedly; each outage is shorter than the EMP retry
// budget, so every request must still complete.
func TestChaosWebSurvivesLinkFlaps(t *testing.T) {
	for seed := uint64(1); seed <= chaosSeeds; seed++ {
		pl := &faults.Plan{Clauses: []faults.Clause{
			faults.Uniform(0.002, 0.002, 0.002, 0.002),
		}}
		// Node 2 (a client) loses its link for 300 us once per 1.5 ms,
		// six times, starting while requests are in flight — each outage
		// is well inside the ~200 ms EMP retry budget.
		pl.Clauses = append(pl.Clauses,
			faults.Flap(2, 500*sim.Microsecond, 1500*sim.Microsecond, 300*sim.Microsecond, 6)...)
		c := cluster.New(cluster.Config{
			Nodes:     4,
			Transport: cluster.TransportSubstrate,
			Seed:      seed,
			Faults:    pl,
		})
		res := apps.RunWeb(c, apps.DefaultWebConfig(4096, 8))
		if res.Err != nil {
			t.Fatalf("seed %d: web under flaps: %v", seed, res.Err)
		}
		if want := 3 * 24; res.Requests != want {
			t.Fatalf("seed %d: %d requests completed, want %d", seed, res.Requests, want)
		}
		if c.Switch.FaultStats().PartitionDrops == 0 {
			t.Fatalf("seed %d: flap windows never dropped a frame", seed)
		}
		checkSubstrateLeaks(t, c)
	}
}

// TestChaosCloseDuringFaults is the close-during-fault matrix: under an
// independent randomized fault plan per seed (loss, duplication,
// corruption, reordering), a client linger-closes mid-plan and a second
// pair runs the half-close handshake. Acked data is never lost — the
// server's byte count matches what the writer sent — the close resolves
// within the linger bound, and nothing leaks.
func TestChaosCloseDuringFaults(t *testing.T) {
	const payload = 128 << 10
	const linger = 2 * sim.Second
	for seed := uint64(1); seed <= chaosSeeds; seed++ {
		pl := faults.RandomPlan(seed, 2, 2*sim.Second)
		opts := core.DefaultOptions()
		opts.Linger = linger
		c := cluster.New(cluster.Config{
			Nodes:     2,
			Transport: cluster.TransportSubstrate,
			Seed:      seed,
			Faults:    pl,
			Substrate: &opts,
		})
		lingerGot, halfGot, echoGot := 0, 0, 0
		var closeErr error
		var closeTook sim.Duration
		c.Eng.Spawn("server", func(p *sim.Proc) {
			l, err := c.Nodes[0].Net.Listen(p, 80, 4)
			if err != nil {
				t.Errorf("seed %d: listen: %v", seed, err)
				return
			}
			for k := 0; k < 2; k++ {
				conn, err := l.Accept(p)
				if err != nil {
					t.Errorf("seed %d: accept: %v", seed, err)
					return
				}
				c.Eng.Spawn("chaos-close-handler", func(hp *sim.Proc) {
					got := 0
					for {
						n, _, err := conn.Read(hp, 64<<10)
						if err != nil {
							t.Errorf("seed %d: server read: %v", seed, err)
							break
						}
						if n == 0 {
							break
						}
						got += n
					}
					// The half-close client sends half the payload and
					// expects it echoed; the linger client sends it all
					// and expects nothing back.
					if got == payload/2 {
						halfGot = got
						if _, err := conn.Write(hp, got, "echo"); err != nil {
							t.Errorf("seed %d: echo write: %v", seed, err)
						}
					} else {
						lingerGot = got
					}
					conn.Close(hp)
				})
			}
			l.Close(p)
		})
		c.Eng.Spawn("linger-client", func(p *sim.Proc) {
			p.Sleep(10 * sim.Microsecond)
			conn, err := c.Nodes[1].Net.Dial(p, c.Addr(0), 80)
			if err != nil {
				t.Errorf("seed %d: dial: %v", seed, err)
				return
			}
			for sent := 0; sent < payload; sent += 8 << 10 {
				if _, err := conn.Write(p, 8<<10, nil); err != nil {
					t.Errorf("seed %d: write: %v", seed, err)
					return
				}
			}
			start := p.Now()
			closeErr = conn.Close(p)
			closeTook = p.Now().Sub(start)
		})
		c.Eng.Spawn("halfclose-client", func(p *sim.Proc) {
			p.Sleep(40 * sim.Microsecond)
			conn, err := c.Nodes[1].Net.Dial(p, c.Addr(0), 80)
			if err != nil {
				t.Errorf("seed %d: dial: %v", seed, err)
				return
			}
			for sent := 0; sent < payload/2; sent += 8 << 10 {
				if _, err := conn.Write(p, 8<<10, nil); err != nil {
					t.Errorf("seed %d: write: %v", seed, err)
					return
				}
			}
			if err := conn.(sock.Closer).CloseWrite(p); err != nil {
				t.Errorf("seed %d: CloseWrite under faults: %v", seed, err)
			}
			for {
				n, _, err := conn.Read(p, 64<<10)
				if err != nil {
					t.Errorf("seed %d: client read: %v", seed, err)
					break
				}
				if n == 0 {
					break
				}
				echoGot += n
			}
			conn.Close(p)
		})
		c.Run(30 * sim.Second)
		if closeErr != nil {
			t.Fatalf("seed %d: linger close under faults: %v", seed, closeErr)
		}
		if closeTook > linger+chaosFailureBound {
			t.Fatalf("seed %d: close took %v, bound %v", seed, closeTook, linger+chaosFailureBound)
		}
		if lingerGot != payload {
			t.Fatalf("seed %d: linger stream delivered %d of %d bytes", seed, lingerGot, payload)
		}
		if halfGot != payload/2 || echoGot != payload/2 {
			t.Fatalf("seed %d: half-close pair moved %d/%d bytes, want %d each",
				seed, halfGot, echoGot, payload/2)
		}
		checkSubstrateLeaks(t, c)
	}
}

// TestChaosPeerCrashMidStream crashes the receiving node mid-transfer —
// through the cluster's fault-plan scheduling, with corruption and
// reordering also active — and requires the surviving writer to observe
// sock.ErrReset within the retry-budget bound, leaking nothing.
func TestChaosPeerCrashMidStream(t *testing.T) {
	const killAt = 20 * sim.Millisecond
	pl := &faults.Plan{
		Clauses: []faults.Clause{faults.Uniform(0.002, 0.002, 0.005, 0.01)},
		Crashes: []faults.Crash{faults.CrashAt(0, killAt)},
	}
	c := cluster.New(cluster.Config{
		Nodes:     2,
		Transport: cluster.TransportSubstrate,
		Seed:      11,
		Faults:    pl,
	})
	var wrErr error
	var errAt sim.Time
	c.Eng.Spawn("server", func(p *sim.Proc) {
		l, err := c.Nodes[0].Net.Listen(p, 80, 4)
		if err != nil {
			t.Errorf("listen: %v", err)
			return
		}
		conn, err := l.Accept(p)
		if err != nil {
			return // crashed while accepting
		}
		for {
			if _, _, err := conn.Read(p, 1<<20); err != nil {
				return
			}
		}
	})
	c.Eng.Spawn("client", func(p *sim.Proc) {
		p.Sleep(10 * sim.Microsecond)
		conn, err := c.Nodes[1].Net.Dial(p, c.Addr(0), 80)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		for {
			if _, err := conn.Write(p, 8<<10, nil); err != nil {
				wrErr, errAt = err, p.Now()
				return
			}
		}
	})
	c.Run(2 * sim.Second)

	if !c.Nodes[0].Sub.Dead() {
		t.Fatal("crash schedule never fired")
	}
	if wrErr != sock.ErrReset {
		t.Fatalf("write to crashed peer returned %v, want sock.ErrReset", wrErr)
	}
	if d := sim.Duration(errAt) - killAt; d > chaosFailureBound {
		t.Fatalf("failure detected %v after the crash, bound %v", d, chaosFailureBound)
	}
	checkSubstrateLeaks(t, c)
}

// TestChaosPartitionExhaustsRetryBudget isolates the server's switch
// port for longer than the EMP retry budget: the writer on the far side
// must fail with sock.ErrReset while the partition holds.
func TestChaosPartitionExhaustsRetryBudget(t *testing.T) {
	const cutAt = 10 * sim.Millisecond
	pl := &faults.Plan{Clauses: faults.NodeDown(0, cutAt, 800*sim.Millisecond)}
	c := cluster.New(cluster.Config{
		Nodes:     2,
		Transport: cluster.TransportSubstrate,
		Seed:      13,
		Faults:    pl,
	})
	var wrErr error
	var errAt sim.Time
	c.Eng.Spawn("server", func(p *sim.Proc) {
		l, err := c.Nodes[0].Net.Listen(p, 80, 4)
		if err != nil {
			t.Errorf("listen: %v", err)
			return
		}
		conn, err := l.Accept(p)
		if err != nil {
			return
		}
		for {
			if _, _, err := conn.Read(p, 1<<20); err != nil {
				return
			}
		}
	})
	c.Eng.Spawn("client", func(p *sim.Proc) {
		p.Sleep(10 * sim.Microsecond)
		conn, err := c.Nodes[1].Net.Dial(p, c.Addr(0), 80)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		for {
			if _, err := conn.Write(p, 8<<10, nil); err != nil {
				wrErr, errAt = err, p.Now()
				return
			}
		}
	})
	c.Run(2 * sim.Second)

	if wrErr != sock.ErrReset {
		t.Fatalf("write across partition returned %v, want sock.ErrReset", wrErr)
	}
	if d := sim.Duration(errAt) - cutAt; d > chaosFailureBound {
		t.Fatalf("failure detected %v after the cut, bound %v", d, chaosFailureBound)
	}
	if c.Switch.FaultStats().PartitionDrops == 0 {
		t.Fatal("partition never dropped a frame")
	}
	// The writer's side must have cleaned up despite the peer being
	// unreachable (abort path: reclaim without the close handshake).
	if k := c.Nodes[1].Sub.ActiveSockets(); k != 0 {
		t.Fatalf("writer leaked %d sockets", k)
	}
	if k := c.Nodes[1].Sub.EP.PrepostedDescriptors(); k != 0 {
		t.Fatalf("writer leaked %d descriptors", k)
	}
}
