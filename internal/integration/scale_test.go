package integration

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/sock"
)

// TestSixteenNodeAllToAll scales the substrate to a 16-node cluster with
// every node both serving and dialing every other node — 240
// simultaneous connections churning tags, descriptors and the shared
// fabric.
func TestSixteenNodeAllToAll(t *testing.T) {
	const nodes = 16
	const msgBytes = 2048
	c := cluster.NewSubstrate(nodes, nil)
	received := make([]int, nodes)
	wg := sim.NewWaitGroup(c.Eng, "all2all")
	for i := 0; i < nodes; i++ {
		i := i
		// Each node serves on its own port...
		c.Eng.Spawn("server", func(p *sim.Proc) {
			l, err := c.Nodes[i].Net.Listen(p, 100+i, nodes)
			if err != nil {
				t.Errorf("node %d listen: %v", i, err)
				return
			}
			for j := 0; j < nodes-1; j++ {
				accepted, err := l.Accept(p)
				if err != nil {
					t.Errorf("node %d accept: %v", i, err)
					return
				}
				conn := accepted
				p.Engine().Spawn("handler", func(hp *sim.Proc) {
					if n, _, err := sock.ReadFull(hp, conn, msgBytes); err == nil {
						received[i] += n
					}
					conn.Close(hp)
				})
			}
		})
		// ...and dials every peer.
		wg.Add(1)
		c.Eng.Spawn("dialer", func(p *sim.Proc) {
			defer wg.Done()
			p.Sleep(sim.Duration(10+i) * sim.Microsecond)
			for j := 0; j < nodes; j++ {
				if j == i {
					continue
				}
				conn, err := c.Nodes[i].Net.Dial(p, c.Addr(j), 100+j)
				if err != nil {
					t.Errorf("node %d dial %d: %v", i, j, err)
					return
				}
				if _, err := conn.Write(p, msgBytes, nil); err != nil {
					t.Errorf("node %d write to %d: %v", i, j, err)
					return
				}
				conn.Close(p)
			}
		})
	}
	c.Run(120 * sim.Second)
	want := (nodes - 1) * msgBytes
	for i, got := range received {
		if got != want {
			t.Fatalf("node %d received %d bytes, want %d", i, got, want)
		}
	}
	// Every substrate must have cleaned its socket table.
	for i, n := range c.Nodes {
		if n.Sub.ActiveSockets() != 0 {
			t.Fatalf("node %d leaked %d sockets", i, n.Sub.ActiveSockets())
		}
		if n.Sub.EP.Stats().SendsFailed != 0 {
			t.Fatalf("node %d had failed sends under the all-to-all load", i)
		}
	}
}

// TestSixteenNodeTCPFanIn: all 15 clients hammer one TCP server
// simultaneously — listener backlog, demux and kernel-path contention at
// scale.
func TestSixteenNodeTCPFanIn(t *testing.T) {
	const nodes = 16
	c := cluster.NewTCP(nodes)
	total := 0
	c.Eng.Spawn("server", func(p *sim.Proc) {
		l, _ := c.Nodes[0].Net.Listen(p, 80, nodes)
		for i := 0; i < nodes-1; i++ {
			accepted, err := l.Accept(p)
			if err != nil {
				return
			}
			conn := accepted
			p.Engine().Spawn("handler", func(hp *sim.Proc) {
				if n, _, err := sock.ReadFull(hp, conn, 10000); err == nil {
					total += n
				}
				conn.Close(hp)
			})
		}
	})
	for i := 1; i < nodes; i++ {
		i := i
		c.Eng.Spawn("client", func(p *sim.Proc) {
			p.Sleep(sim.Duration(i) * 5 * sim.Microsecond)
			conn, err := c.Nodes[i].Net.Dial(p, c.Addr(0), 80)
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			conn.Write(p, 10000, nil)
			conn.Close(p)
		})
	}
	c.Run(60 * sim.Second)
	if total != (nodes-1)*10000 {
		t.Fatalf("server received %d bytes, want %d", total, (nodes-1)*10000)
	}
}
