package integration

import (
	"fmt"
	"testing"

	"repro/internal/audit"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/sock"
)

// sessionCounter reads a "session"-layer counter off a node's registry.
func sessionCounter(n *cluster.Node, metric string) int64 {
	return n.Tel.Counter("session", metric).Value()
}

// echoServer accepts one session and echoes everything it reads until
// EOF, reporting bytes echoed and the first error.
func echoServer(t *testing.T, c *cluster.Cluster, l sock.Listener, done *int64) {
	c.Eng.Spawn("echo-server", func(p *sim.Proc) {
		conn, err := l.Accept(p)
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		for {
			n, objs, err := conn.Read(p, 64<<10)
			if err != nil {
				t.Errorf("server read: %v", err)
				return
			}
			if n == 0 {
				conn.Close(p)
				return
			}
			var obj any
			if len(objs) > 0 {
				obj = objs[len(objs)-1]
			}
			if _, err := conn.Write(p, n, obj); err != nil {
				t.Errorf("server write: %v", err)
				return
			}
			*done += int64(n)
		}
	})
}

// TestSessionEcho: the session layer is transparent on a healthy
// failover cluster — ping-pong with payload objects, clean EOF, clean
// audit.
func TestSessionEcho(t *testing.T) {
	c := cluster.New(cluster.Config{Nodes: 2, Failover: true, Seed: 3})
	scfg := sock.SessionConfig{Eng: c.Eng, Name: "echo", Tel: c.Nodes[0].Tel}

	var echoed int64
	c.Eng.Spawn("listen", func(p *sim.Proc) {
		subL, err := c.Nodes[0].Sub.Listen(p, 80, 4)
		if err != nil {
			t.Errorf("sub listen: %v", err)
			return
		}
		tcpL, err := c.Nodes[0].Stack.Listen(p, 80, 4)
		if err != nil {
			t.Errorf("tcp listen: %v", err)
			return
		}
		echoServer(t, c, sock.NewSessionListener(scfg, subL, tcpL), &echoed)
	})

	const rounds, chunk = 16, 2048
	okRounds := 0
	c.Eng.Spawn("client", func(p *sim.Proc) {
		p.Sleep(20 * sim.Microsecond)
		cfg := scfg
		cfg.Tel = c.Nodes[1].Tel
		cfg.Targets = c.Targets(1, 0, 80)
		s, err := sock.DialSession(p, cfg)
		if err != nil {
			t.Errorf("dial session: %v", err)
			return
		}
		for i := 0; i < rounds; i++ {
			if _, err := s.Write(p, chunk, i); err != nil {
				t.Errorf("write %d: %v", i, err)
				return
			}
			_, objs, err := sock.ReadFull(p, s, chunk)
			if err != nil {
				t.Errorf("read %d: %v", i, err)
				return
			}
			if len(objs) != 1 || objs[0].(int) != i {
				t.Errorf("round %d: echoed objs %v", i, objs)
				return
			}
			okRounds++
		}
		s.Close(p)
	})
	c.Run(5 * sim.Second)
	if okRounds != rounds {
		t.Fatalf("completed %d of %d rounds", okRounds, rounds)
	}
	if echoed != rounds*chunk {
		t.Fatalf("server echoed %d bytes, want %d", echoed, rounds*chunk)
	}
	if s := c.Targets(1, 0, 80); len(s) != 2 {
		t.Fatalf("failover cluster should expose 2 targets, got %d", len(s))
	}
	if rep := audit.Cluster(c); !rep.Clean() {
		t.Fatalf("audit: %v", rep.Findings)
	}
}

// TestSessionFailoverOnRefusedSubstrate: the server listens only on
// kernel TCP, so the substrate dial is refused and the session's dial
// policy must fall through to the TCP target on the first pass —
// counting one failover — while the application sees a working
// connection.
func TestSessionFailoverOnRefusedSubstrate(t *testing.T) {
	c := cluster.New(cluster.Config{Nodes: 2, Failover: true, Seed: 4})
	scfg := sock.SessionConfig{Eng: c.Eng, Name: "fo", Tel: c.Nodes[0].Tel}

	var echoed int64
	c.Eng.Spawn("listen", func(p *sim.Proc) {
		tcpL, err := c.Nodes[0].Stack.Listen(p, 80, 4)
		if err != nil {
			t.Errorf("tcp listen: %v", err)
			return
		}
		echoServer(t, c, sock.NewSessionListener(scfg, tcpL), &echoed)
	})

	var got []byte
	c.Eng.Spawn("client", func(p *sim.Proc) {
		p.Sleep(20 * sim.Microsecond)
		cfg := scfg
		cfg.Tel = c.Nodes[1].Tel
		cfg.Targets = c.Targets(1, 0, 80)
		s, err := sock.DialSession(p, cfg)
		if err != nil {
			t.Errorf("dial session: %v", err)
			return
		}
		for i := 0; i < 8; i++ {
			if _, err := s.Write(p, 512, byte(i)); err != nil {
				t.Errorf("write: %v", err)
				return
			}
			_, objs, err := sock.ReadFull(p, s, 512)
			if err != nil {
				t.Errorf("read: %v", err)
				return
			}
			got = append(got, objs[0].(byte))
		}
		s.Close(p)
	})
	c.Run(5 * sim.Second)
	for i, b := range got {
		if b != byte(i) {
			t.Fatalf("echo order broken at %d: %v", i, got)
		}
	}
	if len(got) != 8 {
		t.Fatalf("completed %d of 8 rounds", len(got))
	}
	if fo := sessionCounter(c.Nodes[1], "failovers"); fo < 1 {
		t.Fatalf("failovers = %d, want >= 1", fo)
	}
}

// TestSessionReconnectUnderWedge: the client's substrate NIC firmware
// wedges mid-stream. The watchdog must declare the transport Wedged and
// abort it, and the session must fail over to TCP and resume the byte
// stream exactly once — every payload object arrives in order, none
// duplicated, and the application never sees ErrReset.
func TestSessionReconnectUnderWedge(t *testing.T) {
	pl := &faults.Plan{NIC: []faults.NICClause{
		faults.FirmwareWedge(1, 4*sim.Millisecond, 400*sim.Millisecond),
	}}
	c := cluster.New(cluster.Config{Nodes: 2, Failover: true, Seed: 7, Faults: pl})
	scfg := sock.SessionConfig{Eng: c.Eng, Name: "wedge", Tel: c.Nodes[0].Tel}

	const rounds, chunk = 40, 1024
	var gotObjs []int
	var gotBytes int
	var srvErr error
	c.Eng.Spawn("listen", func(p *sim.Proc) {
		subL, err := c.Nodes[0].Sub.Listen(p, 80, 4)
		if err != nil {
			t.Errorf("sub listen: %v", err)
			return
		}
		tcpL, err := c.Nodes[0].Stack.Listen(p, 80, 4)
		if err != nil {
			t.Errorf("tcp listen: %v", err)
			return
		}
		l := sock.NewSessionListener(scfg, subL, tcpL)
		conn, err := l.Accept(p)
		if err != nil {
			srvErr = err
			return
		}
		for {
			n, objs, err := conn.Read(p, 64<<10)
			if err != nil {
				srvErr = err
				return
			}
			if n == 0 {
				conn.Close(p)
				return
			}
			gotBytes += n
			for _, o := range objs {
				gotObjs = append(gotObjs, o.(int))
			}
		}
	})

	var cliErr error
	c.Eng.Spawn("client", func(p *sim.Proc) {
		p.Sleep(20 * sim.Microsecond)
		cfg := scfg
		cfg.Tel = c.Nodes[1].Tel
		cfg.Targets = c.Targets(1, 0, 80)
		s, err := sock.DialSession(p, cfg)
		if err != nil {
			cliErr = err
			return
		}
		for i := 0; i < rounds; i++ {
			if _, err := s.Write(p, chunk, i); err != nil {
				cliErr = fmt.Errorf("write %d: %w", i, err)
				return
			}
			p.Sleep(500 * sim.Microsecond)
		}
		s.Close(p)
	})
	c.Run(5 * sim.Second)
	if cliErr != nil {
		t.Fatalf("client: %v", cliErr)
	}
	if srvErr != nil {
		t.Fatalf("server: %v", srvErr)
	}
	if gotBytes != rounds*chunk {
		t.Fatalf("server received %d bytes, want exactly %d", gotBytes, rounds*chunk)
	}
	if len(gotObjs) != rounds {
		t.Fatalf("server received %d objects, want exactly %d (no loss, no duplication)", len(gotObjs), rounds)
	}
	for i, o := range gotObjs {
		if o != i {
			t.Fatalf("object order broken at %d: got %d", i, o)
		}
	}
	cli := c.Nodes[1]
	if rc := sessionCounter(cli, "reconnects") + sessionCounter(cli, "failovers"); rc < 1 {
		t.Fatalf("no reconnect or failover recorded (reconnects=%d failovers=%d watchdog=%d)",
			sessionCounter(cli, "reconnects"), sessionCounter(cli, "failovers"),
			sessionCounter(cli, "watchdog_aborts"))
	}
	if c.Nodes[1].Sub.EP.NIC.WedgeStalls.Value == 0 {
		t.Fatal("wedge fault never fired")
	}
}

// creditLossCluster builds a 2-node substrate cluster where the
// client's NIC loses most unexpected-queue deliveries (credit updates
// ride the UQ with the default UQAcks configuration) in an early
// window. A small credit count keeps grant traffic frequent so the
// loss has plenty of chances to bite.
func creditLossCluster(syncAfter sim.Duration, seed uint64) *cluster.Cluster {
	opts := core.DefaultOptions()
	opts.CreditSyncAfter = syncAfter
	opts.Credits = 8
	pl := &faults.Plan{NIC: []faults.NICClause{
		faults.LostCreditUpdates(1, 0, 200*sim.Millisecond, 0.9),
	}}
	return cluster.New(cluster.Config{
		Nodes:     2,
		Transport: cluster.TransportSubstrate,
		Substrate: &opts,
		Seed:      seed,
		Faults:    pl,
	})
}

// creditLossTransfer streams bytes from node 1 to node 0 under the
// credit-loss plan and reports how many bytes landed. The writes are
// paced: a writer blocked on credits posts an on-demand ack descriptor
// that grants tag-match into, so only a writer that is NOT stalled
// receives them unsolicited on the unexpected queue — the delivery the
// fault plan can lose.
func creditLossTransfer(c *cluster.Cluster, total int) (got int, wrErr error) {
	c.Eng.Spawn("server", func(p *sim.Proc) {
		l, err := c.Nodes[0].Net.Listen(p, 80, 4)
		if err != nil {
			return
		}
		conn, err := l.Accept(p)
		if err != nil {
			return
		}
		for got < total {
			n, _, err := conn.Read(p, 64<<10)
			if err != nil || n == 0 {
				return
			}
			got += n
		}
		conn.Close(p)
	})
	c.Eng.Spawn("client", func(p *sim.Proc) {
		p.Sleep(10 * sim.Microsecond)
		conn, err := c.Nodes[1].Net.Dial(p, c.Addr(0), 80)
		if err != nil {
			wrErr = err
			return
		}
		for sent := 0; sent < total; sent += 1024 {
			if _, err := conn.Write(p, 1024, nil); err != nil {
				wrErr = err
				return
			}
			// The pace must exceed the message+ack round trip: only then can
		// the grant that would unblock the writer's NEXT stall fly (and
		// be lost) before the stall posts its descriptor.
		p.Sleep(100 * sim.Microsecond)
		}
	})
	c.Run(2 * sim.Second)
	return got, wrErr
}

// TestCreditReconcileRepairsLostGrants: with the reconciliation sweep
// on, a stream whose credit updates are being dropped at the NIC
// completes anyway — the stalled writer probes, the receiver answers
// with its cumulative grant total, and the drift heals. The audit must
// come back clean.
func TestCreditReconcileRepairsLostGrants(t *testing.T) {
	const total = 256 << 10
	c := creditLossCluster(500*sim.Microsecond, 11)
	got, wrErr := creditLossTransfer(c, total)
	if wrErr != nil {
		t.Fatalf("writer: %v", wrErr)
	}
	if got != total {
		t.Fatalf("received %d of %d bytes", got, total)
	}
	if v := c.Nodes[1].Sub.CreditSyncs.Value; v == 0 {
		t.Fatal("no credit-sync probes sent — the fault never bit or the sweep is dead")
	}
	if v := c.Nodes[1].Sub.EP.NIC.UQLost.Value; v == 0 {
		t.Fatal("credit-update loss never fired")
	}
	if rep := audit.Cluster(c); !rep.Clean() {
		t.Fatalf("audit: %v", rep.Findings)
	}
}

// TestCreditLossWedgesWithoutReconcile is the control: the identical
// fault plan with the sweep disabled must NOT complete — the writer
// runs out of credits that no one will ever return. This proves the
// reconciliation sweep is load-bearing in the test above.
func TestCreditLossWedgesWithoutReconcile(t *testing.T) {
	const total = 256 << 10
	c := creditLossCluster(0, 11)
	got, wrErr := creditLossTransfer(c, total)
	if wrErr != nil {
		t.Fatalf("writer saw an error (want a silent wedge): %v", wrErr)
	}
	if got == total {
		t.Fatal("transfer completed without the reconciliation sweep — the control no longer proves anything")
	}
}

// TestNICFaultSmoke: each recoverable NIC fault kind fires its counter
// and the transfer still completes via the layer that absorbs it
// (doorbell watchdog re-ring, DMA stall wait, FCS-drop + EMP
// retransmit).
func TestNICFaultSmoke(t *testing.T) {
	cases := []struct {
		name    string
		clause  faults.NICClause
		counter func(c *cluster.Cluster) int64
	}{
		{"doorbell", faults.DoorbellDrops(1, 0, 50*sim.Millisecond, 0.3),
			func(c *cluster.Cluster) int64 { return c.Nodes[1].Sub.EP.NIC.DoorbellsDropped.Value }},
		{"dma-stall", faults.DMAStalls(1, 0, 50*sim.Millisecond, 0.3, 200*sim.Microsecond),
			func(c *cluster.Cluster) int64 { return c.Nodes[1].Sub.EP.NIC.DMAStalls.Value }},
		{"desc-flip", faults.DescFlips(1, 0, 50*sim.Millisecond, 0.2),
			func(c *cluster.Cluster) int64 { return c.Nodes[1].Sub.EP.NIC.DescFlips.Value }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			pl := &faults.Plan{NIC: []faults.NICClause{tc.clause}}
			c := cluster.New(cluster.Config{
				Nodes:     2,
				Transport: cluster.TransportSubstrate,
				Seed:      13,
				Faults:    pl,
			})
			const total = 128 << 10
			got, wrErr := creditLossTransfer(c, total)
			if wrErr != nil {
				t.Fatalf("writer: %v", wrErr)
			}
			if got != total {
				t.Fatalf("received %d of %d bytes", got, total)
			}
			if tc.counter(c) == 0 {
				t.Fatalf("%s fault never fired", tc.name)
			}
			if rep := audit.Cluster(c); !rep.Clean() {
				t.Fatalf("audit: %v", rep.Findings)
			}
		})
	}
}
