// Package integration runs whole-stack scenarios: applications over the
// substrate and the kernel stack on shared and lossy fabrics, mixed
// protocol traffic, and end-to-end determinism.
package integration

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/emp"
	"repro/internal/ethernet"
	"repro/internal/kernel"
	"repro/internal/nic"
	"repro/internal/sim"
	"repro/internal/sock"
	"repro/internal/tcpip"
)

func lossySwitch(rate float64) *ethernet.SwitchConfig {
	cfg := ethernet.DefaultSwitchConfig()
	cfg.LossRate = rate
	return &cfg
}

func TestFTPOverLossyFabric(t *testing.T) {
	// The whole application stack — fd table, substrate, EMP
	// reliability — must deliver a bit-exact file size despite frame
	// loss.
	c := cluster.New(cluster.Config{
		Nodes:     2,
		Transport: cluster.TransportSubstrate,
		Switch:    lossySwitch(0.01),
		Seed:      41,
	})
	res := apps.RunFTP(c, 8<<20)
	if res.Err != nil {
		t.Fatalf("ftp over lossy fabric: %v", res.Err)
	}
	if size, ok := c.Nodes[1].FS.Stat("copy.bin"); !ok || size != 8<<20 {
		t.Fatalf("client copy = %d bytes", size)
	}
	// Loss must actually have been exercised.
	if c.Switch.Drops() == 0 {
		t.Fatal("loss injection did not fire")
	}
}

func TestWebOverLossyFabricTCP(t *testing.T) {
	c := cluster.New(cluster.Config{
		Nodes:     4,
		Transport: cluster.TransportTCP,
		Switch:    lossySwitch(0.005),
		Seed:      13,
	})
	cfg := apps.DefaultWebConfig(1024, 1)
	cfg.RequestsPerClient = 8
	res := apps.RunWeb(c, cfg)
	if res.Err != nil {
		t.Fatalf("web over lossy TCP: %v", res.Err)
	}
	if res.Requests != 24 {
		t.Fatalf("completed %d/24 requests", res.Requests)
	}
}

func TestMixedProtocolFabric(t *testing.T) {
	// EMP endpoints and kernel TCP stacks share one switch: each
	// protocol must ignore the other's frames and both must work.
	eng := sim.NewEngine()
	sw := ethernet.NewSwitch(eng, ethernet.DefaultSwitchConfig())

	// Two TCP hosts.
	var stacks [2]*tcpip.Stack
	for i := range stacks {
		h := kernel.NewHost(eng, "tcp-host", 4, kernel.DefaultCosts())
		stacks[i] = tcpip.NewStack(eng, h, sw, tcpip.DefaultStackConfig())
	}
	// Two substrate hosts on the same fabric.
	var subs [2]*core.Substrate
	for i := range subs {
		h := kernel.NewHost(eng, "emp-host", 4, kernel.DefaultCosts())
		n := nic.New(eng, "nic", nic.DefaultConfig())
		n.Attach(sw)
		subs[i] = core.New(eng, h, n, core.DefaultOptions())
	}

	tcpOK, subOK := false, false
	eng.Spawn("tcp-server", func(p *sim.Proc) {
		l, _ := stacks[0].Listen(p, 80, 4)
		c, err := l.Accept(p)
		if err != nil {
			return
		}
		if n, _, _ := sock.ReadFull(p, c, 5000); n == 5000 {
			tcpOK = true
		}
	})
	eng.Spawn("tcp-client", func(p *sim.Proc) {
		p.Sleep(10 * sim.Microsecond)
		c, err := stacks[1].Dial(p, stacks[0].Addr(), 80)
		if err != nil {
			return
		}
		c.Write(p, 5000, nil)
	})
	eng.Spawn("sub-server", func(p *sim.Proc) {
		l, _ := subs[0].Listen(p, 80, 4)
		c, err := l.Accept(p)
		if err != nil {
			return
		}
		if n, _, _ := sock.ReadFull(p, c, 5000); n == 5000 {
			subOK = true
		}
	})
	eng.Spawn("sub-client", func(p *sim.Proc) {
		p.Sleep(10 * sim.Microsecond)
		c, err := subs[1].Dial(p, subs[0].Addr(), 80)
		if err != nil {
			return
		}
		c.Write(p, 5000, nil)
	})
	eng.RunUntil(sim.Time(10 * sim.Second))
	if !tcpOK || !subOK {
		t.Fatalf("mixed fabric: tcp=%v substrate=%v", tcpOK, subOK)
	}
}

func TestWholeAppDeterminism(t *testing.T) {
	run := func() (sim.Duration, float64) {
		c := cluster.New(cluster.Config{
			Nodes:     4,
			Transport: cluster.TransportSubstrate,
			Switch:    lossySwitch(0.01),
			Seed:      99,
		})
		web := apps.RunWeb(c, apps.DefaultWebConfig(1024, 1))
		c2 := cluster.New(cluster.Config{
			Nodes:     2,
			Transport: cluster.TransportSubstrate,
			Switch:    lossySwitch(0.01),
			Seed:      99,
		})
		ftp := apps.RunFTP(c2, 4<<20)
		return web.AvgResponse, ftp.Mbps()
	}
	w1, f1 := run()
	w2, f2 := run()
	if w1 != w2 || f1 != f2 {
		t.Fatalf("replay diverged: web %v/%v ftp %v/%v", w1, w2, f1, f2)
	}
}

func TestFdTableDrivesWholePipelineOverTCP(t *testing.T) {
	// The fd-tracking layer must work identically over the kernel
	// stack: file and socket descriptors in one loop (the FTP app runs
	// through it; exercise it directly here).
	c := cluster.NewTCP(2)
	c.Nodes[0].FS.Create("src.dat", 100000, "payload")
	moved := 0
	c.Eng.Spawn("server", func(p *sim.Proc) {
		s := c.Nodes[0].FD
		ffd, _ := s.Open(p, "src.dat")
		lfd, _ := s.Listen(p, 80, 2)
		cfd, err := s.Accept(p, lfd)
		if err != nil {
			return
		}
		for {
			n, objs, _ := s.Read(p, ffd, 16<<10)
			if n == 0 {
				break
			}
			var obj any
			if len(objs) > 0 {
				obj = objs[0]
			}
			s.Write(p, cfd, n, obj)
		}
		s.Close(p, cfd)
		s.Close(p, ffd)
		s.Close(p, lfd)
	})
	c.Eng.Spawn("client", func(p *sim.Proc) {
		p.Sleep(10 * sim.Microsecond)
		s := c.Nodes[1].FD
		cfd, err := s.Connect(p, c.Addr(0), 80)
		if err != nil {
			return
		}
		out := s.Create(p, "dst.dat")
		for {
			n, objs, err := s.Read(p, cfd, 16<<10)
			if err != nil || n == 0 {
				break
			}
			var obj any
			if len(objs) > 0 {
				obj = objs[0]
			}
			s.Write(p, out, n, obj)
			moved += n
		}
		s.Close(p, cfd)
		s.Close(p, out)
	})
	c.Run(60 * sim.Second)
	if moved != 100000 {
		t.Fatalf("moved %d/100000 bytes through the fd pipeline", moved)
	}
	if size, _ := c.Nodes[1].FS.Stat("dst.dat"); size != 100000 {
		t.Fatalf("destination file = %d bytes", size)
	}
}

func TestJumboClusterEndToEnd(t *testing.T) {
	nicCfg := nic.JumboConfig()
	c := cluster.New(cluster.Config{
		Nodes:     2,
		Transport: cluster.TransportSubstrate,
		NIC:       &nicCfg,
	})
	res := apps.RunFTP(c, 8<<20)
	if res.Err != nil {
		t.Fatalf("ftp over jumbo frames: %v", res.Err)
	}
	std := apps.RunFTP(cluster.NewSubstrate(2, nil), 8<<20)
	if res.Mbps() <= std.Mbps() {
		t.Fatalf("jumbo FTP (%.0f) should beat standard (%.0f)", res.Mbps(), std.Mbps())
	}
}

func TestUnknownPayloadIgnoredByEMP(t *testing.T) {
	// A raw (non-EMP) frame delivered to an EMP NIC must be counted and
	// dropped, not crash the firmware.
	eng := sim.NewEngine()
	sw := ethernet.NewSwitch(eng, ethernet.DefaultSwitchConfig())
	h := kernel.NewHost(eng, "h", 4, kernel.DefaultCosts())
	n := nic.New(eng, "n", nic.DefaultConfig())
	n.Attach(sw)
	ep := emp.NewEndpoint(eng, h, n, emp.DefaultEndpointConfig())
	eng.After(0, func() {
		n.Deliver(&ethernet.Frame{Src: 0, Dst: 0, PayloadLen: 64, Payload: "garbage"})
	})
	eng.RunUntil(sim.Time(sim.Millisecond))
	if ep.Stats().FramesDropped != 1 {
		t.Fatalf("foreign frame not dropped cleanly: %+v", ep.Stats())
	}
}
