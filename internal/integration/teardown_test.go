package integration

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ethernet"
	"repro/internal/faults"
	"repro/internal/kernel"
	"repro/internal/nic"
	"repro/internal/sim"
	"repro/internal/sock"
	"repro/internal/tcpip"
)

// Graceful-teardown suite: half-close, lingering close, per-dial
// deadlines, double-close idempotence, and the host-wide quiesce — on
// both stacks wherever the semantics exist on both.

// TestHalfCloseBothTransports runs the same half-duplex conversation on
// both stacks: the client sends a request and shuts down its write
// side, the server reads to end-of-stream and only then answers. The
// application-visible figures (bytes each side received) must come out
// identical on the two transports.
func TestHalfCloseBothTransports(t *testing.T) {
	const c2s, s2c = 5000, 3000
	type figures struct{ srvGot, cliGot int }
	results := map[cluster.Transport]figures{}
	for _, tr := range []cluster.Transport{cluster.TransportSubstrate, cluster.TransportTCP} {
		c := cluster.New(cluster.Config{Nodes: 2, Transport: tr, Seed: 21})
		var fig figures
		c.Eng.Spawn("server", func(p *sim.Proc) {
			l, err := c.Nodes[0].Net.Listen(p, 80, 4)
			if err != nil {
				t.Errorf("%v listen: %v", tr, err)
				return
			}
			conn, err := l.Accept(p)
			if err != nil {
				t.Errorf("%v accept: %v", tr, err)
				return
			}
			for {
				n, _, err := conn.Read(p, 64<<10)
				if err != nil {
					t.Errorf("%v server read: %v", tr, err)
					break
				}
				if n == 0 {
					break // client shut its write side
				}
				fig.srvGot += n
			}
			// The reverse direction must still carry data after the
			// peer's half-close.
			if _, err := conn.Write(p, s2c, "reply"); err != nil {
				t.Errorf("%v server write after peer half-close: %v", tr, err)
			}
			conn.Close(p)
			l.Close(p)
		})
		c.Eng.Spawn("client", func(p *sim.Proc) {
			p.Sleep(10 * sim.Microsecond)
			conn, err := c.Nodes[1].Net.Dial(p, c.Addr(0), 80)
			if err != nil {
				t.Errorf("%v dial: %v", tr, err)
				return
			}
			hc, ok := conn.(sock.Closer)
			if !ok {
				t.Errorf("%v conn %T does not implement sock.Closer", tr, conn)
				conn.Close(p)
				return
			}
			if _, err := conn.Write(p, c2s, "request"); err != nil {
				t.Errorf("%v client write: %v", tr, err)
			}
			if err := hc.CloseWrite(p); err != nil {
				t.Errorf("%v CloseWrite: %v", tr, err)
			}
			if _, err := conn.Write(p, 64, nil); err != sock.ErrClosed {
				t.Errorf("%v write after CloseWrite: err = %v, want sock.ErrClosed", tr, err)
			}
			for {
				n, _, err := conn.Read(p, 64<<10)
				if err != nil {
					t.Errorf("%v client read: %v", tr, err)
					break
				}
				if n == 0 {
					break
				}
				fig.cliGot += n
			}
			conn.Close(p)
		})
		c.Run(5 * sim.Second)
		if fig.srvGot != c2s || fig.cliGot != s2c {
			t.Errorf("%v: server got %d (want %d), client got %d (want %d)",
				tr, fig.srvGot, c2s, fig.cliGot, s2c)
		}
		results[tr] = fig
		checkSubstrateLeaks(t, c)
	}
	if results[cluster.TransportSubstrate] != results[cluster.TransportTCP] {
		t.Errorf("half-close figures differ across transports: substrate %+v, tcp %+v",
			results[cluster.TransportSubstrate], results[cluster.TransportTCP])
	}
}

// TestDoubleCloseIdempotent: a second Close on either transport is a
// nil-returning no-op, and the half-close entry points report ErrClosed
// once the socket is gone instead of touching freed state.
func TestDoubleCloseIdempotent(t *testing.T) {
	for _, tr := range []cluster.Transport{cluster.TransportSubstrate, cluster.TransportTCP} {
		c := cluster.New(cluster.Config{Nodes: 2, Transport: tr, Seed: 22})
		c.Eng.Spawn("server", func(p *sim.Proc) {
			l, err := c.Nodes[0].Net.Listen(p, 80, 4)
			if err != nil {
				t.Errorf("%v listen: %v", tr, err)
				return
			}
			conn, err := l.Accept(p)
			if err != nil {
				t.Errorf("%v accept: %v", tr, err)
				return
			}
			for {
				n, _, err := conn.Read(p, 64<<10)
				if err != nil || n == 0 {
					break
				}
			}
			if err := conn.Close(p); err != nil {
				t.Errorf("%v server close: %v", tr, err)
			}
			if err := conn.Close(p); err != nil {
				t.Errorf("%v server double close: %v", tr, err)
			}
			l.Close(p)
		})
		c.Eng.Spawn("client", func(p *sim.Proc) {
			p.Sleep(10 * sim.Microsecond)
			conn, err := c.Nodes[1].Net.Dial(p, c.Addr(0), 80)
			if err != nil {
				t.Errorf("%v dial: %v", tr, err)
				return
			}
			conn.Write(p, 64, nil)
			if err := conn.Close(p); err != nil {
				t.Errorf("%v close: %v", tr, err)
			}
			if err := conn.Close(p); err != nil {
				t.Errorf("%v double close: err = %v, want nil", tr, err)
			}
			hc := conn.(sock.Closer)
			if err := hc.CloseWrite(p); err != sock.ErrClosed {
				t.Errorf("%v CloseWrite after Close: err = %v, want sock.ErrClosed", tr, err)
			}
			if err := hc.CloseRead(p); err != sock.ErrClosed {
				t.Errorf("%v CloseRead after Close: err = %v, want sock.ErrClosed", tr, err)
			}
		})
		c.Run(2 * sim.Second)
		checkSubstrateLeaks(t, c)
	}
}

// TestPollerHalfCloseFiresEOFOnce is the readiness regression for
// half-close: a registered connection whose peer shuts its write side
// fires PollIn, the read observes a 0-length EOF, and the edge does not
// re-fire into an event storm afterwards.
func TestPollerHalfCloseFiresEOFOnce(t *testing.T) {
	for _, tr := range []cluster.Transport{cluster.TransportSubstrate, cluster.TransportTCP} {
		extra := 0
		c := cluster.New(cluster.Config{Nodes: 2, Transport: tr, Seed: 23})
		c.Eng.Spawn("server", func(p *sim.Proc) {
			l, err := c.Nodes[0].Net.Listen(p, 80, 4)
			if err != nil {
				t.Errorf("%v listen: %v", tr, err)
				return
			}
			conn, err := l.Accept(p)
			if err != nil {
				t.Errorf("%v accept: %v", tr, err)
				return
			}
			po := sock.NewPoller(c.Eng, "teardown-eof")
			po.Register(conn.(sock.Pollable), sock.PollIn|sock.PollErr, nil)
			if evs := po.Wait(p, sim.Second); evs == nil {
				t.Errorf("%v: poller never fired on peer half-close", tr)
			} else if n, _, err := conn.Read(p, 4096); err != nil || n != 0 {
				t.Errorf("%v: read after half-close = (%d, %v), want 0-length EOF", tr, n, err)
			}
			// Drain any further tokens: the EOF edge must not re-fire.
			for {
				evs := po.Wait(p, 2*sim.Millisecond)
				if evs == nil {
					break
				}
				extra += len(evs)
			}
			po.Close()
			conn.Close(p)
			l.Close(p)
		})
		c.Eng.Spawn("client", func(p *sim.Proc) {
			p.Sleep(10 * sim.Microsecond)
			conn, err := c.Nodes[1].Net.Dial(p, c.Addr(0), 80)
			if err != nil {
				t.Errorf("%v dial: %v", tr, err)
				return
			}
			if err := conn.(sock.Closer).CloseWrite(p); err != nil {
				t.Errorf("%v CloseWrite: %v", tr, err)
			}
			p.Sleep(30 * sim.Millisecond)
			conn.Close(p)
		})
		c.Run(2 * sim.Second)
		if extra > 0 {
			t.Errorf("%v: EOF edge re-fired %d extra event(s)", tr, extra)
		}
		checkSubstrateLeaks(t, c)
	}
}

// TestDialDeadlineSubstrate: a synchronous connect to a port nobody
// listens on must resolve with sock.ErrTimeout when the configured
// DialDeadline passes, instead of burning the full retry budget.
func TestDialDeadlineSubstrate(t *testing.T) {
	opts := core.DefaultOptions()
	opts.SyncConnect = true
	opts.DialDeadline = 4 * sim.Millisecond
	opts.DialRetries = 10
	opts.DialBackoff = sim.Millisecond
	c := cluster.NewSubstrate(2, &opts)
	var dialErr error
	var took sim.Duration
	c.Eng.Spawn("dialer", func(p *sim.Proc) {
		start := p.Now()
		_, dialErr = c.Nodes[1].Net.Dial(p, c.Addr(0), 4242) // nobody listens
		took = p.Now().Sub(start)
	})
	c.Run(sim.Second)
	if dialErr != sock.ErrTimeout {
		t.Fatalf("dial past deadline: err = %v, want sock.ErrTimeout", dialErr)
	}
	if took < 3*sim.Millisecond || took > 6*sim.Millisecond {
		t.Fatalf("dial resolved in %v, want about the 4ms deadline", took)
	}
	if k := c.Nodes[1].Sub.ActiveSockets(); k != 0 {
		t.Fatalf("abandoned dial leaked %d sockets", k)
	}
	if k := c.Nodes[1].Sub.EP.PrepostedDescriptors(); k != 0 {
		t.Fatalf("abandoned dial leaked %d descriptors", k)
	}
	c.Nodes[0].Sub.PurgeStale()
	if k := c.Nodes[0].Sub.EP.UnexpectedQueued(); k != 0 {
		t.Fatalf("target holds %d stale unexpected-queue entries after purge", k)
	}
}

// TestDialDeadlineTCP: the kernel stack's DialTimeout bounds the whole
// SYN handshake; a partitioned target resolves with sock.ErrTimeout at
// the deadline rather than after SynRetries full RTOs.
func TestDialDeadlineTCP(t *testing.T) {
	cfg := tcpip.DefaultStackConfig()
	cfg.DialTimeout = 4 * sim.Millisecond
	pl := &faults.Plan{Clauses: faults.NodeDown(0, 0, 800*sim.Millisecond)}
	c := cluster.New(cluster.Config{
		Nodes:     2,
		Transport: cluster.TransportTCP,
		TCP:       &cfg,
		Seed:      24,
		Faults:    pl,
	})
	var dialErr error
	var took sim.Duration
	c.Eng.Spawn("dialer", func(p *sim.Proc) {
		p.Sleep(100 * sim.Microsecond)
		start := p.Now()
		_, dialErr = c.Nodes[1].Net.Dial(p, c.Addr(0), 80)
		took = p.Now().Sub(start)
	})
	c.Run(sim.Second)
	if dialErr != sock.ErrTimeout {
		t.Fatalf("dial across partition: err = %v, want sock.ErrTimeout", dialErr)
	}
	if took < 3*sim.Millisecond || took > 6*sim.Millisecond {
		t.Fatalf("dial resolved in %v, want about the 4ms deadline", took)
	}
}

// TestLingerCloseDeliversTail: with Options.Linger set, Close blocks
// until every credit is home — the peer provably consumed the tail —
// and returns nil well inside the linger bound.
func TestLingerCloseDeliversTail(t *testing.T) {
	opts := core.DefaultOptions()
	opts.Linger = 50 * sim.Millisecond
	c := cluster.NewSubstrate(2, &opts)
	const payload = 128 << 10
	got := 0
	var closeErr error
	var took sim.Duration
	c.Eng.Spawn("server", func(p *sim.Proc) {
		l, err := c.Nodes[0].Net.Listen(p, 80, 4)
		if err != nil {
			t.Errorf("listen: %v", err)
			return
		}
		conn, err := l.Accept(p)
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		for {
			n, _, err := conn.Read(p, 64<<10)
			if err != nil || n == 0 {
				break
			}
			got += n
		}
		conn.Close(p)
		l.Close(p)
	})
	c.Eng.Spawn("client", func(p *sim.Proc) {
		p.Sleep(10 * sim.Microsecond)
		conn, err := c.Nodes[1].Net.Dial(p, c.Addr(0), 80)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		for sent := 0; sent < payload; sent += 8 << 10 {
			if _, err := conn.Write(p, 8<<10, nil); err != nil {
				t.Errorf("write: %v", err)
				return
			}
		}
		start := p.Now()
		closeErr = conn.Close(p)
		took = p.Now().Sub(start)
	})
	c.Run(5 * sim.Second)
	if closeErr != nil {
		t.Fatalf("linger close: %v", closeErr)
	}
	if got != payload {
		t.Fatalf("server received %d of %d bytes", got, payload)
	}
	if took >= opts.Linger {
		t.Fatalf("drained close took %v, the full linger bound %v", took, opts.Linger)
	}
	if v := c.Nodes[1].Sub.LingerExpired.Value; v != 0 {
		t.Fatalf("LingerExpired = %d on a drained close", v)
	}
	checkSubstrateLeaks(t, c)
}

// TestLingerExpiryAbortsUnconsumedTail: the peer stages data but its
// application never consumes it, so the receive-side eager budget
// withholds the credits. The lingering close cannot prove the drain,
// expires at the bound, aborts, and reports sock.ErrTimeout — leaking
// nothing on the closing host.
func TestLingerExpiryAbortsUnconsumedTail(t *testing.T) {
	opts := core.DefaultOptions()
	opts.Linger = 5 * sim.Millisecond
	opts.Credits = 8
	opts.BufSize = 4096
	opts.EagerBudget = 1024
	c := cluster.NewSubstrate(2, &opts)
	var closeErr error
	var took sim.Duration
	c.Eng.Spawn("server", func(p *sim.Proc) {
		l, err := c.Nodes[0].Net.Listen(p, 80, 4)
		if err != nil {
			t.Errorf("listen: %v", err)
			return
		}
		if _, err := l.Accept(p); err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		p.Sleep(sim.Second) // accept, then never read
	})
	c.Eng.Spawn("client", func(p *sim.Proc) {
		p.Sleep(10 * sim.Microsecond)
		conn, err := c.Nodes[1].Net.Dial(p, c.Addr(0), 80)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		for i := 0; i < 7; i++ {
			if _, err := conn.Write(p, 4096, nil); err != nil {
				t.Errorf("write: %v", err)
				return
			}
		}
		start := p.Now()
		closeErr = conn.Close(p)
		took = p.Now().Sub(start)
	})
	c.Run(500 * sim.Millisecond)
	if closeErr != sock.ErrTimeout {
		t.Fatalf("undrainable linger close: err = %v, want sock.ErrTimeout", closeErr)
	}
	if took < opts.Linger || took > opts.Linger+2*sim.Millisecond {
		t.Fatalf("expiry took %v, want about the %v linger bound", took, opts.Linger)
	}
	if v := c.Nodes[1].Sub.LingerExpired.Value; v != 1 {
		t.Fatalf("LingerExpired = %d, want 1", v)
	}
	if k := c.Nodes[1].Sub.ActiveSockets(); k != 0 {
		t.Fatalf("aborted close leaked %d sockets", k)
	}
	if k := c.Nodes[1].Sub.EP.PrepostedDescriptors(); k != 0 {
		t.Fatalf("aborted close leaked %d descriptors", k)
	}
}

// TestTCPLingerExpiryOnPartition: SO_LINGER semantics on the kernel
// stack — the FIN cannot be acknowledged across a partition, so Close
// blocks for the linger bound, then aborts with sock.ErrTimeout.
func TestTCPLingerExpiryOnPartition(t *testing.T) {
	cfg := tcpip.DefaultStackConfig()
	cfg.Linger = 10 * sim.Millisecond
	const cutAt = 5 * sim.Millisecond
	pl := &faults.Plan{Clauses: faults.NodeDown(0, cutAt, 800*sim.Millisecond)}
	c := cluster.New(cluster.Config{
		Nodes:     2,
		Transport: cluster.TransportTCP,
		TCP:       &cfg,
		Seed:      25,
		Faults:    pl,
	})
	var closeErr error
	var took sim.Duration
	c.Eng.Spawn("server", func(p *sim.Proc) {
		l, err := c.Nodes[0].Net.Listen(p, 80, 4)
		if err != nil {
			t.Errorf("listen: %v", err)
			return
		}
		conn, err := l.Accept(p)
		if err != nil {
			return
		}
		for {
			if _, _, err := conn.Read(p, 64<<10); err != nil {
				return
			}
		}
	})
	c.Eng.Spawn("client", func(p *sim.Proc) {
		p.Sleep(10 * sim.Microsecond)
		conn, err := c.Nodes[1].Net.Dial(p, c.Addr(0), 80)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		if _, err := conn.Write(p, 4096, nil); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		p.Sleep(6 * sim.Millisecond) // partition is up; FIN will be lost
		start := p.Now()
		closeErr = conn.Close(p)
		took = p.Now().Sub(start)
	})
	c.Run(sim.Second)
	if closeErr != sock.ErrTimeout {
		t.Fatalf("linger close across partition: err = %v, want sock.ErrTimeout", closeErr)
	}
	if took < cfg.Linger || took > cfg.Linger+3*sim.Millisecond {
		t.Fatalf("expiry took %v, want about the %v linger bound", took, cfg.Linger)
	}
	if v := c.Nodes[1].Stack.LingerExpired.Value; v != 1 {
		t.Fatalf("LingerExpired = %d, want 1", v)
	}
}

// TestDrainQuiesceMixedConns is the host-wide quiesce acceptance run:
// one host carries 68 live connections — 36 streaming, 32 datagram,
// every one with a blocked reader at both ends — and drains under a
// deadline while new dials keep arriving. Every dial issued after the
// drain begins resolves with sock.ErrRefused, every connection unwinds
// through the linger path, and the mandatory post-drain audits (whose
// findings surface as the Drain error) come back clean.
func TestDrainQuiesceMixedConns(t *testing.T) {
	eng := sim.NewEngine()
	sw := ethernet.NewSwitch(eng, ethernet.DefaultSwitchConfig())
	newSub := func(opts core.Options) *core.Substrate {
		h := kernel.NewHost(eng, "host", 4, kernel.DefaultCosts())
		n := nic.New(eng, "nic", nic.DefaultConfig())
		n.Attach(sw)
		return core.New(eng, h, n, opts)
	}
	ds := core.DefaultOptions()
	dg := core.DatagramOptions()
	late := core.DefaultOptions()
	late.SyncConnect = true
	late.DialRetries = 0
	// The "host" under drain runs a streaming and a datagram substrate
	// side by side; quiescing it means draining both.
	srvDS, srvDG := newSub(ds), newSub(dg)
	cliDS, cliDG, lateSub := newSub(ds), newSub(dg), newSub(late)

	const dsConns, dgConns = 36, 32
	serve := func(name string, s *core.Substrate, conns int) {
		eng.Spawn(name, func(p *sim.Proc) {
			l, err := s.Listen(p, 80, conns)
			if err != nil {
				t.Errorf("%s listen: %v", name, err)
				return
			}
			for i := 0; i < conns; i++ {
				cn, err := l.Accept(p)
				if err != nil {
					return // drain closed the listener
				}
				eng.Spawn(name+"-handler", func(hp *sim.Proc) {
					for {
						n, _, err := cn.Read(hp, 64<<10)
						if err != nil || n == 0 {
							break
						}
					}
					cn.Close(hp)
				})
			}
		})
	}
	serve("ds-server", srvDS, dsConns)
	serve("dg-server", srvDG, dgConns)

	connected := 0
	client := func(name string, from, to *core.Substrate, i int) {
		eng.Spawn(name, func(p *sim.Proc) {
			p.Sleep(sim.Duration(10+15*i) * sim.Microsecond)
			cn, err := from.Dial(p, to.Addr(), 80)
			if err != nil {
				t.Errorf("%s %d dial: %v", name, i, err)
				return
			}
			connected++
			if _, err := cn.Write(p, 512, nil); err != nil {
				t.Errorf("%s %d write: %v", name, i, err)
				return
			}
			for { // block until the drain's shutdown delivers EOF
				n, _, err := cn.Read(p, 64<<10)
				if err != nil || n == 0 {
					break
				}
			}
			cn.Close(p)
		})
	}
	for i := 0; i < dsConns; i++ {
		client("ds-client", cliDS, srvDS, i)
	}
	for i := 0; i < dgConns; i++ {
		client("dg-client", cliDG, srvDG, i)
	}

	const drainAt = 10 * sim.Millisecond
	const drainBudget = 200 * sim.Millisecond
	var errDS, errDG error
	var doneDS, doneDG sim.Time
	eng.Spawn("drain-ds", func(p *sim.Proc) {
		p.Sleep(drainAt)
		errDS = srvDS.Drain(p, p.Now().Add(drainBudget))
		doneDS = p.Now()
	})
	eng.Spawn("drain-dg", func(p *sim.Proc) {
		p.Sleep(drainAt)
		errDG = srvDG.Drain(p, p.Now().Add(drainBudget))
		doneDG = p.Now()
	})
	refused := 0
	for i := 0; i < 8; i++ {
		i := i
		eng.Spawn("late-dialer", func(p *sim.Proc) {
			p.Sleep(drainAt + 50*sim.Microsecond + sim.Duration(i)*5*sim.Microsecond)
			dst := srvDS
			if i%2 == 1 {
				dst = srvDG
			}
			if _, err := lateSub.Dial(p, dst.Addr(), 80); err != sock.ErrRefused {
				t.Errorf("late dial %d: err = %v, want sock.ErrRefused", i, err)
			} else {
				refused++
			}
		})
	}
	eng.RunUntil(sim.Time(5 * sim.Second))

	if connected != dsConns+dgConns {
		t.Fatalf("%d of %d connections established before the drain", connected, dsConns+dgConns)
	}
	if errDS != nil {
		t.Fatalf("streaming drain: %v", errDS)
	}
	if errDG != nil {
		t.Fatalf("datagram drain: %v", errDG)
	}
	if doneDS == 0 || doneDG == 0 {
		t.Fatal("drain never completed")
	}
	if limit := drainAt + drainBudget; sim.Duration(doneDS) > limit || sim.Duration(doneDG) > limit {
		t.Fatalf("drain overran its deadline: ds %v, dg %v, limit %v",
			sim.Duration(doneDS), sim.Duration(doneDG), limit)
	}
	if refused != 8 {
		t.Fatalf("%d of 8 concurrent dials refused", refused)
	}
	for name, s := range map[string]*core.Substrate{
		"srv-ds": srvDS, "srv-dg": srvDG, "cli-ds": cliDS, "cli-dg": cliDG, "late": lateSub,
	} {
		if k := s.ActiveSockets(); k != 0 {
			t.Errorf("%s leaked %d active sockets", name, k)
		}
		if k := s.EP.PrepostedDescriptors(); k != 0 {
			t.Errorf("%s leaked %d preposted descriptors", name, k)
		}
		s.PurgeStale()
		if k := s.EP.UnexpectedQueued(); k != 0 {
			t.Errorf("%s leaked %d unexpected-queue entries", name, k)
		}
	}
}

// TestDrainTCPStack drains a kernel-stack host holding live
// connections: the FIN handshakes run out in parallel under the one
// deadline, a dial issued mid-drain is refused, and the stack's demux
// table and buffer gauges audit clean (surfaced as the Drain error).
func TestDrainTCPStack(t *testing.T) {
	c := cluster.New(cluster.Config{Nodes: 3, Transport: cluster.TransportTCP, Seed: 26})
	const conns = 24
	c.Eng.Spawn("server", func(p *sim.Proc) {
		l, err := c.Nodes[0].Net.Listen(p, 80, conns)
		if err != nil {
			t.Errorf("listen: %v", err)
			return
		}
		for i := 0; i < conns; i++ {
			cn, err := l.Accept(p)
			if err != nil {
				return
			}
			c.Eng.Spawn("handler", func(hp *sim.Proc) {
				for {
					n, _, err := cn.Read(hp, 64<<10)
					if err != nil || n == 0 {
						break
					}
				}
				cn.Close(hp)
			})
		}
	})
	connected := 0
	for i := 0; i < conns; i++ {
		i := i
		c.Eng.Spawn("client", func(p *sim.Proc) {
			p.Sleep(sim.Duration(10+25*i) * sim.Microsecond)
			cn, err := c.Nodes[1+i%2].Net.Dial(p, c.Addr(0), 80)
			if err != nil {
				t.Errorf("client %d dial: %v", i, err)
				return
			}
			connected++
			if _, err := cn.Write(p, 512, nil); err != nil {
				t.Errorf("client %d write: %v", i, err)
				return
			}
			for {
				n, _, err := cn.Read(p, 64<<10)
				if err != nil || n == 0 {
					break
				}
			}
			cn.Close(p)
		})
	}
	var drainErr error
	var done sim.Time
	c.Eng.Spawn("drainer", func(p *sim.Proc) {
		p.Sleep(10 * sim.Millisecond)
		drainErr = c.Nodes[0].Drain(p, p.Now().Add(100*sim.Millisecond))
		done = p.Now()
	})
	var lateErr error
	c.Eng.Spawn("late-dialer", func(p *sim.Proc) {
		p.Sleep(10*sim.Millisecond + 50*sim.Microsecond)
		_, lateErr = c.Nodes[2].Net.Dial(p, c.Addr(0), 80)
	})
	c.Run(2 * sim.Second)
	if connected != conns {
		t.Fatalf("%d of %d connections established before the drain", connected, conns)
	}
	if drainErr != nil {
		t.Fatalf("drain: %v", drainErr)
	}
	if done == 0 {
		t.Fatal("drain never completed")
	}
	if sim.Duration(done) > 10*sim.Millisecond+100*sim.Millisecond {
		t.Fatalf("drain overran its deadline, finished at %v", sim.Duration(done))
	}
	if lateErr != sock.ErrRefused {
		t.Fatalf("dial during drain: err = %v, want sock.ErrRefused", lateErr)
	}
	if !c.Nodes[0].Stack.Draining() {
		t.Fatal("stack does not report draining")
	}
	checkSubstrateLeaks(t, c)
}
