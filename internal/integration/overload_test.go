package integration

import (
	"testing"

	"repro/internal/audit"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/sock"
)

// Overload-resilience suite: a connect flood far beyond a listener's
// backlog must degrade to defined, typed refusals — never a hang, an
// unbounded queue, or a leaked descriptor.

// overloadOpts is the flood configuration: synchronous connects with no
// retries so every dialer observes exactly one verdict, plus all three
// resource budgets active.
func overloadOpts() *core.Options {
	o := core.DefaultOptions()
	o.SyncConnect = true
	o.DialRetries = 0
	o.DescriptorBudget = 4096
	o.EagerBudget = 1 << 20
	o.UQBytes = 256 << 10
	return &o
}

// runFlood aims dialers at a backlog-limited listener that never
// accepts and returns the per-error tallies.
func runFlood(t *testing.T, c *cluster.Cluster, dialersPerNode int) map[error]int {
	t.Helper()
	const backlog = 8
	clients := len(c.Nodes) - 1
	total := clients * dialersPerNode
	verdicts := make(map[error]int)
	resolved := 0
	var l sock.Listener
	c.Eng.Spawn("server", func(p *sim.Proc) {
		var err error
		l, err = c.Nodes[0].Net.Listen(p, 80, backlog)
		if err != nil {
			t.Errorf("listen: %v", err)
		}
	})
	for node := 1; node <= clients; node++ {
		for j := 0; j < dialersPerNode; j++ {
			node, j := node, j
			c.Eng.Spawn("dialer", func(p *sim.Proc) {
				// Stagger arrivals so the flood ramps rather than
				// delivering one synchronized burst.
				p.Sleep(sim.Duration(10+2*(j*clients+node)) * sim.Microsecond)
				_, err := c.Nodes[node].Net.Dial(p, c.Addr(0), 80)
				if err == nil {
					t.Errorf("dialer %d/%d connected to a listener that never accepts", node, j)
					err = nil
				}
				verdicts[err]++
				resolved++
			})
		}
	}
	c.Eng.Spawn("teardown", func(p *sim.Proc) {
		for resolved < total {
			p.Sleep(sim.Millisecond)
		}
		if l != nil {
			l.Close(p)
		}
	})
	c.Run(10 * sim.Second)
	if resolved != total {
		t.Fatalf("only %d/%d dialers resolved", resolved, total)
	}
	return verdicts
}

// TestOverloadFloodRefusesBeyondBacklog: 256 dialers against a backlog-8
// listener. Every dialer must fail with sock.ErrRefused (the explicit
// refusal) or sock.ErrTimeout (parked within the backlog slack until the
// connect deadline); the unexpected queue's peak occupancy must stay
// bounded by the refusal policy, not by the flood's size; and after the
// listener closes, the host-wide resource audit must be clean.
func TestOverloadFloodRefusesBeyondBacklog(t *testing.T) {
	c := cluster.New(cluster.Config{
		Nodes:     5,
		Transport: cluster.TransportSubstrate,
		Substrate: overloadOpts(),
		Seed:      21,
	})
	verdicts := runFlood(t, c, 64)
	for err, n := range verdicts {
		if err != sock.ErrRefused && err != sock.ErrTimeout {
			t.Errorf("%d dialers failed with %v; only ErrRefused/ErrTimeout are defined under overload", n, err)
		}
	}
	if verdicts[sock.ErrRefused] == 0 {
		t.Error("no dialer was explicitly refused; the refusal policy never fired")
	}
	srv := c.Nodes[0].Sub
	if srv.RefusedConns.Value == 0 {
		t.Error("server refusal counter is zero")
	}
	// The queue must be bounded by backlog-slack refusal, far below the
	// 256 requests offered.
	if peak := srv.EP.UnexpectedPeakEntries(); peak > 64 {
		t.Errorf("unexpected-queue peak %d: flood occupancy is not bounded", peak)
	}
	for _, n := range c.Nodes {
		n.Sub.PurgeStale()
	}
	if rep := audit.Cluster(c); !rep.Clean() {
		t.Errorf("after flood:\n%s", rep)
	}
}

// TestOverloadFloodUnderFaultPlan repeats the flood under a randomized
// fault plan (loss, duplication, corruption, reordering): fabric damage
// may additionally surface as ErrReset, but never as a hang, an
// unbounded queue, or a dirty audit.
func TestOverloadFloodUnderFaultPlan(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		c := cluster.New(cluster.Config{
			Nodes:     5,
			Transport: cluster.TransportSubstrate,
			Substrate: overloadOpts(),
			Seed:      seed,
			Faults:    faults.RandomPlan(seed, 5, sim.Second),
		})
		verdicts := runFlood(t, c, 32)
		for err, n := range verdicts {
			if err != sock.ErrRefused && err != sock.ErrTimeout && err != sock.ErrReset {
				t.Errorf("seed %d: %d dialers failed with %v", seed, n, err)
			}
		}
		if peak := c.Nodes[0].Sub.EP.UnexpectedPeakEntries(); peak > 64 {
			t.Errorf("seed %d: unexpected-queue peak %d under faults", seed, peak)
		}
		for _, n := range c.Nodes {
			if n.Sub != nil && !n.Sub.Dead() {
				n.Sub.PurgeStale()
			}
		}
		if rep := audit.Cluster(c); !rep.Clean() {
			t.Errorf("seed %d: after faulted flood:\n%s", seed, rep)
		}
	}
}

// TestOverloadStarvedReadersBoundEagerPool: many senders against one
// never-reading receiver node must be held by the eager byte budget —
// the staged-byte gauge stays at or under the budget no matter how much
// the senders offer.
func TestOverloadStarvedReadersBoundEagerPool(t *testing.T) {
	opts := overloadOpts()
	opts.EagerBudget = 64 << 10
	// Keep the credit window small: bytes already admitted by credits
	// when the budget fills are staged regardless (they are on the wire
	// and cannot be refused), so the credit window bounds the overshoot.
	opts.Credits = 4
	c := cluster.New(cluster.Config{
		Nodes:     5,
		Transport: cluster.TransportSubstrate,
		Substrate: opts,
		Seed:      31,
	})
	const conns = 4
	accepted := 0
	c.Eng.Spawn("server", func(p *sim.Proc) {
		l, err := c.Nodes[0].Net.Listen(p, 80, conns)
		if err != nil {
			t.Errorf("listen: %v", err)
			return
		}
		for i := 0; i < conns; i++ {
			conn, err := l.Accept(p)
			if err != nil {
				t.Errorf("accept %d: %v", i, err)
				return
			}
			accepted++
			// Pump arrivals into the staging buffers without consuming:
			// 1-byte reads keep the reader as starved as possible while
			// still exercising the gauge.
			c.Eng.Spawn("starved-reader", func(rp *sim.Proc) {
				for {
					if _, _, err := conn.Read(rp, 1); err != nil {
						return
					}
					rp.Sleep(5 * sim.Millisecond)
				}
			})
		}
	})
	for node := 1; node <= conns; node++ {
		node := node
		c.Eng.Spawn("sender", func(p *sim.Proc) {
			p.Sleep(sim.Duration(10*node) * sim.Microsecond)
			conn, err := c.Nodes[node].Net.Dial(p, c.Addr(0), 80)
			if err != nil {
				t.Errorf("sender %d dial: %v", node, err)
				return
			}
			conn.(sock.Deadliner).SetWriteDeadline(p.Now().Add(200 * sim.Millisecond))
			for i := 0; i < 64; i++ {
				if _, err := conn.Write(p, 16<<10, i); err != nil {
					return // backpressure (timeout) is the expected end
				}
			}
		})
	}
	c.Run(2 * sim.Second)
	if accepted != conns {
		t.Fatalf("accepted %d/%d", accepted, conns)
	}
	now, hw := c.Nodes[0].Sub.EagerBytes()
	if hw == 0 {
		t.Fatal("eager gauge never moved; senders did not reach staging")
	}
	// The high-water mark may exceed the budget by at most the credit
	// window: messages already admitted by credits when the budget
	// filled are on the wire and cannot be refused. Deferred reposts
	// withhold further credit, so nothing beyond the window lands.
	slack := conns * opts.Credits * (16 << 10)
	if hw > opts.EagerBudget+slack {
		t.Fatalf("eager high water %d exceeds budget %d + credit-window slack %d", hw, opts.EagerBudget, slack)
	}
	if deferrals := c.Nodes[0].Sub.EagerDeferrals.Value; deferrals == 0 {
		t.Fatal("budget never deferred a repost; backpressure path untested")
	}
	_ = now
}
