package integration

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ethernet"
	"repro/internal/kernel"
	"repro/internal/nic"
	"repro/internal/sim"
	"repro/internal/sock"
	"repro/internal/tcpip"
)

// mixEnd tracks one listener and its accepted connection in the mixed
// interest set; it doubles as the poller's per-registration data.
type mixEnd struct {
	name string
	l    sock.Listener
	c    sock.Conn
	n    int
}

// TestPollerMixesSubstrateAndTCPInOneInterestSet: one sock.Poller
// multiplexes listeners and connections from BOTH stacks — the
// user-level substrate and the kernel TCP stack — on one fabric. The
// readiness contract is stack-agnostic, so a single event loop can
// front both; each side must deliver its accept and its data through
// the same Wait.
func TestPollerMixesSubstrateAndTCPInOneInterestSet(t *testing.T) {
	eng := sim.NewEngine()
	sw := ethernet.NewSwitch(eng, ethernet.DefaultSwitchConfig())
	var stacks [2]*tcpip.Stack
	for i := range stacks {
		h := kernel.NewHost(eng, "tcp-host", 4, kernel.DefaultCosts())
		stacks[i] = tcpip.NewStack(eng, h, sw, tcpip.DefaultStackConfig())
	}
	var subs [2]*core.Substrate
	for i := range subs {
		h := kernel.NewHost(eng, "emp-host", 4, kernel.DefaultCosts())
		n := nic.New(eng, "nic", nic.DefaultConfig())
		n.Attach(sw)
		subs[i] = core.New(eng, h, n, core.DefaultOptions())
	}

	const want = 64
	ends := []*mixEnd{{name: "substrate"}, {name: "tcp"}}
	eng.Spawn("front-end", func(p *sim.Proc) {
		var err error
		if ends[0].l, err = subs[0].Listen(p, 80, 2); err != nil {
			t.Errorf("substrate listen: %v", err)
			return
		}
		if ends[1].l, err = stacks[0].Listen(p, 80, 2); err != nil {
			t.Errorf("tcp listen: %v", err)
			return
		}
		po := sock.NewPoller(eng, "mixed-stacks")
		for _, e := range ends {
			po.Register(e.l.(sock.Pollable), sock.PollIn|sock.PollErr, e)
		}
		for ends[0].n < want || ends[1].n < want {
			evs := po.Wait(p, 5*sim.Second)
			if evs == nil {
				t.Error("mixed poller timed out")
				break
			}
			for _, ev := range evs {
				e := ev.Data.(*mixEnd)
				if e.c == nil {
					if e.l.(sock.Pollable).PollState()&sock.PollIn == 0 {
						continue
					}
					c, err := e.l.Accept(p)
					if err != nil {
						t.Errorf("%s accept: %v", e.name, err)
						return
					}
					e.c = c
					po.Register(c.(sock.Pollable), sock.PollIn|sock.PollErr, e)
					continue
				}
				for e.n < want && e.c.(sock.Pollable).PollState()&sock.PollIn != 0 {
					n, _, err := e.c.Read(p, want-e.n)
					if err != nil || n == 0 {
						break
					}
					e.n += n
				}
			}
		}
		po.Close()
		for _, e := range ends {
			if e.c != nil {
				e.c.Close(p)
			}
			e.l.Close(p)
		}
	})
	eng.Spawn("sub-client", func(p *sim.Proc) {
		p.Sleep(50 * sim.Microsecond)
		c, err := subs[1].Dial(p, subs[0].Addr(), 80)
		if err != nil {
			t.Errorf("substrate dial: %v", err)
			return
		}
		c.Write(p, want, "sub-data")
		p.Sleep(20 * sim.Millisecond)
		c.Close(p)
	})
	eng.Spawn("tcp-client", func(p *sim.Proc) {
		p.Sleep(70 * sim.Microsecond)
		c, err := stacks[1].Dial(p, stacks[0].Addr(), 80)
		if err != nil {
			t.Errorf("tcp dial: %v", err)
			return
		}
		c.Write(p, want, "tcp-data")
		p.Sleep(20 * sim.Millisecond)
		c.Close(p)
	})
	eng.RunUntil(sim.Time(30 * sim.Second))
	for _, e := range ends {
		if e.n != want {
			t.Fatalf("%s delivered %d of %d bytes through the mixed poller", e.name, e.n, want)
		}
	}
}
