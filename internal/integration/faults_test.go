package integration

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/ethernet"
	"repro/internal/sim"
	"repro/internal/sock"
)

func dupSwitch(rate float64) *ethernet.SwitchConfig {
	cfg := ethernet.DefaultSwitchConfig()
	cfg.DupRate = rate
	return &cfg
}

// TestSubstrateSurvivesDuplication: duplicated frames must be suppressed
// by EMP's completed-message and duplicate-fragment handling — exactly
// once delivery at the substrate level.
func TestSubstrateSurvivesDuplication(t *testing.T) {
	c := cluster.New(cluster.Config{
		Nodes:     2,
		Transport: cluster.TransportSubstrate,
		Switch:    dupSwitch(0.1),
		Seed:      5,
	})
	var objs []any
	gotN := 0
	c.Eng.Spawn("server", func(p *sim.Proc) {
		l, err := c.Nodes[0].Net.Listen(p, 80, 4)
		if err != nil {
			t.Errorf("listen: %v", err)
			return
		}
		conn, err := l.Accept(p)
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		for gotN < 20*1024 {
			n, o, err := conn.Read(p, 64<<10)
			if err != nil {
				t.Errorf("read after %d bytes: %v", gotN, err)
				return
			}
			if n == 0 {
				break
			}
			gotN += n
			objs = append(objs, o...)
		}
	})
	c.Eng.Spawn("client", func(p *sim.Proc) {
		p.Sleep(10 * sim.Microsecond)
		conn, err := c.Nodes[1].Net.Dial(p, c.Addr(0), 80)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		for i := 0; i < 20; i++ {
			if _, err := conn.Write(p, 1024, i); err != nil {
				t.Errorf("write %d: %v", i, err)
				return
			}
		}
	})
	c.Run(30 * sim.Second)
	if c.Switch.Dups() == 0 {
		t.Fatal("duplication injection did not fire")
	}
	if gotN != 20*1024 {
		t.Fatalf("received %d bytes, want exactly %d (no duplicate delivery)", gotN, 20*1024)
	}
	if len(objs) != 20 {
		t.Fatalf("received %d objects, want exactly 20", len(objs))
	}
	for i, o := range objs {
		if o.(int) != i {
			t.Fatalf("object order broken at %d: %v", i, o)
		}
	}
}

// TestTCPSurvivesDuplication: duplicate segments fall outside the
// in-order window and are dropped with a duplicate ack; the byte stream
// must be delivered exactly once.
func TestTCPSurvivesDuplication(t *testing.T) {
	c := cluster.New(cluster.Config{
		Nodes:     2,
		Transport: cluster.TransportTCP,
		Switch:    dupSwitch(0.05),
		Seed:      9,
	})
	const total = 1 << 20
	got := 0
	c.Eng.Spawn("server", func(p *sim.Proc) {
		l, err := c.Nodes[0].Net.Listen(p, 80, 4)
		if err != nil {
			t.Errorf("listen: %v", err)
			return
		}
		conn, err := l.Accept(p)
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		for got < total {
			n, _, err := conn.Read(p, 64<<10)
			if err != nil {
				t.Errorf("read after %d bytes: %v", got, err)
				return
			}
			if n == 0 {
				break
			}
			got += n
		}
	})
	c.Eng.Spawn("client", func(p *sim.Proc) {
		p.Sleep(10 * sim.Microsecond)
		conn, err := c.Nodes[1].Net.Dial(p, c.Addr(0), 80)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		for sent := 0; sent < total; sent += 64 << 10 {
			if _, err := conn.Write(p, 64<<10, nil); err != nil {
				t.Errorf("write at %d: %v", sent, err)
				return
			}
		}
	})
	c.Run(60 * sim.Second)
	if got != total {
		t.Fatalf("received %d bytes, want exactly %d", got, total)
	}
	if c.Switch.Dups() == 0 {
		t.Fatal("duplication injection did not fire")
	}
}

// TestCombinedLossAndDuplication stresses both fault paths at once
// through a full application.
func TestCombinedLossAndDuplication(t *testing.T) {
	swCfg := ethernet.DefaultSwitchConfig()
	swCfg.LossRate = 0.01
	swCfg.DupRate = 0.02
	c := cluster.New(cluster.Config{
		Nodes:     2,
		Transport: cluster.TransportSubstrate,
		Switch:    &swCfg,
		Seed:      77,
	})
	res := apps.RunFTP(c, 4<<20)
	if res.Err != nil {
		t.Fatalf("ftp under loss+duplication: %v", res.Err)
	}
	if size, _ := c.Nodes[1].FS.Stat("copy.bin"); size != 4<<20 {
		t.Fatalf("file corrupted: %d bytes", size)
	}
}

// TestKVStoreOverLossyTCP drives the data-center workload through the
// kernel stack's full recovery machinery.
func TestKVStoreOverLossyTCP(t *testing.T) {
	c := cluster.New(cluster.Config{
		Nodes:     4,
		Transport: cluster.TransportTCP,
		Switch:    lossySwitch(0.005),
		Seed:      3,
	})
	cfg := apps.DefaultKVConfig(1024)
	cfg.OpsPerClient = 20
	res := apps.RunKVStore(c, cfg)
	if res.Err != nil {
		t.Fatalf("kv over lossy tcp: %v", res.Err)
	}
	if res.Ops != 60 {
		t.Fatalf("ops = %d", res.Ops)
	}
}

// TestPollerUnderChurnDoesNotMissWakeups hammers the edge-triggered
// poller with many short-lived readable events: every arrival edge must
// produce a wakeup, and the drain-until-not-readable discipline must
// never strand bytes.
func TestPollerUnderChurnDoesNotMissWakeups(t *testing.T) {
	c := cluster.NewSubstrate(2, nil)
	served := 0
	const rounds = 40
	c.Eng.Spawn("server", func(p *sim.Proc) {
		l, err := c.Nodes[0].Net.Listen(p, 80, 4)
		if err != nil {
			t.Errorf("listen: %v", err)
			return
		}
		conn, err := l.Accept(p)
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		po := sock.NewPoller(c.Eng, "churn")
		defer po.Close()
		po.Register(conn.(sock.Pollable), sock.PollIn|sock.PollErr, nil)
		got := 0
		for got < rounds*100 {
			if evs := po.Wait(p, 100*sim.Millisecond); len(evs) == 0 {
				return // timed out: a wakeup was missed
			}
			// Edge-triggered: drain until the socket stops being readable.
			for conn.Readable() {
				n, _, err := conn.Read(p, 4096)
				if err != nil || n == 0 {
					return
				}
				got += n
			}
		}
		served = got / 100
	})
	c.Eng.Spawn("client", func(p *sim.Proc) {
		p.Sleep(10 * sim.Microsecond)
		conn, err := c.Nodes[1].Net.Dial(p, c.Addr(0), 80)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		for i := 0; i < rounds; i++ {
			if _, err := conn.Write(p, 100, nil); err != nil {
				t.Errorf("write %d: %v", i, err)
				return
			}
			p.Sleep(200 * sim.Microsecond)
		}
	})
	c.Run(60 * sim.Second)
	if served != rounds {
		t.Fatalf("select served %d/%d rounds", served, rounds)
	}
}
