package integration

import (
	"errors"
	"testing"

	"repro/internal/apps"
	"repro/internal/audit"
	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/sock"
	"repro/internal/tcpip"
)

// ringKinds flattens one flight ring into the set of event kinds it
// holds.
func ringKinds(c *cluster.Cluster, node int, ring string) map[string]bool {
	kinds := make(map[string]bool)
	for _, ev := range c.Nodes[node].Tel.Flight(ring).Events() {
		kinds[ev.Kind] = true
	}
	return kinds
}

// anyRingWith reports whether any flight ring on the node records an
// event of the given kind, returning the first such ring's id.
func anyRingWith(c *cluster.Cluster, node int, kind string) (string, bool) {
	for _, id := range c.Nodes[node].Tel.FlightIDs() {
		for _, ev := range c.Nodes[node].Tel.Flight(id).Events() {
			if ev.Kind == kind {
				return id, true
			}
		}
	}
	return "", false
}

// dialDownHost drives the downtime-window dial contract on a 2-node
// cluster whose node 0 reboots per the plan: a dial issued while the
// host is dark must fail with a typed error inside the transport's
// dial bound (never hang), and a later retry must land on the reborn
// incarnation's resurrected listener.
func dialDownHost(t *testing.T, c *cluster.Cluster, failBound sim.Duration) {
	t.Helper()
	boot := func(p *sim.Proc) {
		l, err := c.Nodes[0].Net.Listen(p, 80, 4)
		if err != nil {
			return // a rebirth mid-listen is not this test's concern
		}
		for {
			conn, err := l.Accept(p)
			if err != nil {
				return
			}
			c.Eng.Spawn("echo1", func(q *sim.Proc) {
				if n, objs, err := conn.Read(q, 64); err == nil && n > 0 {
					var obj any
					if len(objs) > 0 {
						obj = objs[len(objs)-1]
					}
					conn.Write(q, n, obj)
				}
				conn.Close(q)
			})
		}
	}
	c.SetBoot(0, boot)
	c.Eng.Spawn("boot0", boot)

	done := false
	c.Eng.Spawn("dialer", func(p *sim.Proc) {
		tg := c.Targets(1, 0, 80)[0]
		p.Sleep(10 * sim.Millisecond) // node 0 is dark [2ms, 32ms)
		start := p.Now()
		_, err := tg.Net.Dial(p, tg.Addr, tg.Port)
		elapsed := p.Now().Sub(start)
		if err == nil {
			t.Errorf("dial at a down host succeeded")
			return
		}
		if !errors.Is(err, sock.ErrTimeout) && !errors.Is(err, sock.ErrRefused) &&
			!errors.Is(err, sock.ErrReset) && !errors.Is(err, sock.ErrClosed) {
			t.Errorf("dial at a down host failed untyped: %v", err)
		}
		if elapsed > failBound {
			t.Errorf("dial at a down host took %v, bound %v", elapsed, failBound)
		}
		// Retry until the reborn incarnation's listener answers.
		for i := 0; i < 40; i++ {
			conn, err := tg.Net.Dial(p, tg.Addr, tg.Port)
			if err != nil {
				p.Sleep(5 * sim.Millisecond)
				continue
			}
			if _, err := conn.Write(p, 1, nil); err != nil {
				t.Errorf("post-rebirth write: %v", err)
			}
			if n, _, err := conn.Read(p, 64); err != nil || n != 1 {
				t.Errorf("post-rebirth echo: n=%d err=%v", n, err)
			}
			conn.Close(p)
			done = true
			return
		}
		t.Errorf("no dial succeeded after the host came back")
	})
	c.Run(2 * sim.Second)
	if !done && !t.Failed() {
		t.Fatalf("dialer never completed")
	}
}

// TestDialDownHostSubstrate: the substrate transport's downtime-window
// dial contract. The failover dial deadline (10 ms) bounds the typed
// failure.
func TestDialDownHostSubstrate(t *testing.T) {
	pl := &faults.Plan{Restarts: []faults.Restart{
		faults.RestartAt(0, 2*sim.Millisecond, 30*sim.Millisecond)}}
	c := cluster.New(cluster.Config{Nodes: 2, Failover: true, Seed: 11, Faults: pl})
	dialDownHost(t, c, 15*sim.Millisecond)
}

// TestDialDownHostTCP: the same contract over the kernel TCP stack,
// bounded by an explicit handshake timeout instead of SYN-retry
// exhaustion.
func TestDialDownHostTCP(t *testing.T) {
	pl := &faults.Plan{Restarts: []faults.Restart{
		faults.RestartAt(0, 2*sim.Millisecond, 30*sim.Millisecond)}}
	tcfg := tcpip.DefaultStackConfig()
	tcfg.DialTimeout = 20 * sim.Millisecond
	c := cluster.New(cluster.Config{
		Nodes: 2, Transport: cluster.TransportTCP, TCP: &tcfg, Seed: 11, Faults: pl})
	dialDownHost(t, c, 25*sim.Millisecond)
}

// TestRestartFlightRecords: a crash-restart cycle must leave a legible
// trail in the flight recorder — "host-down" and "host-restart" in the
// rebooted node's host ring and in the rings of connections the outage
// cut, and "resume-reborn" in the session ring the reborn listener
// adopted.
func TestRestartFlightRecords(t *testing.T) {
	pl := &faults.Plan{Restarts: []faults.Restart{
		faults.RestartAt(0, 12*sim.Millisecond, 30*sim.Millisecond)}}
	c := cluster.New(cluster.Config{Nodes: 3, Failover: true, Seed: 7, Faults: pl})
	cfg := apps.DefaultWebConfig(1024, 8)
	cfg.Clients = 2
	cfg.RequestsPerClient = 10
	cfg.Sessions = true
	cfg.Think = 8 * sim.Millisecond
	res := apps.RunWeb(c, cfg)
	if res.Err != nil {
		t.Fatalf("web workload failed: %v", res.Err)
	}

	host := ringKinds(c, 0, "node0/host")
	if !host["host-down"] || !host["host-restart"] {
		t.Errorf("node0/host ring missing restart cycle events: %v", host)
	}
	if _, ok := anyRingWith(c, 1, "host-down"); !ok {
		t.Errorf("no client-side ring recorded host-down")
	}
	if _, ok := anyRingWith(c, 1, "host-restart"); !ok {
		t.Errorf("no client-side ring recorded host-restart")
	}
	if id, ok := anyRingWith(c, 0, "resume-reborn"); !ok {
		t.Errorf("no server-side session ring recorded resume-reborn")
	} else if kinds := ringKinds(c, 0, id); !kinds["resume-reborn"] {
		t.Errorf("ring %s lost its resume-reborn event", id)
	}
}

// TestResumeRejectedStaleAfterReboot: a reborn listener must refuse —
// typed, recorded, never hanging — a reattach whose offset lies beyond
// the committed resume state. The server here echoes without ever
// committing (no Cork/Uncork bracket), so after the reboot the durable
// record still reads [0,0) while the client's receive offset has moved
// on: resume is impossible and the session must fail with
// ErrSessionResume on both sides.
func TestResumeRejectedStaleAfterReboot(t *testing.T) {
	pl := &faults.Plan{Restarts: []faults.Restart{
		faults.RestartAt(0, 5*sim.Millisecond, 20*sim.Millisecond)}}
	c := cluster.New(cluster.Config{Nodes: 2, Failover: true, Seed: 13, Faults: pl})

	boot := func(p *sim.Proc) {
		n := c.Nodes[0]
		subL, err := n.Sub.Listen(p, 80, 4)
		if err != nil {
			return
		}
		tcpL, err := n.Stack.Listen(p, 80, 4)
		if err != nil {
			return
		}
		scfg := sock.SessionConfig{Eng: c.Eng, Name: "echo", Tel: n.Tel,
			Store: n.Resume, Incarnation: uint64(n.Incarnation)}
		l := sock.NewSessionListener(scfg, subL, tcpL)
		for {
			conn, err := l.Accept(p)
			if err != nil {
				return
			}
			c.Eng.Spawn("echo-uncommitted", func(q *sim.Proc) {
				for {
					n, objs, err := conn.Read(q, 64<<10)
					if err != nil || n == 0 {
						return
					}
					var obj any
					if len(objs) > 0 {
						obj = objs[len(objs)-1]
					}
					if _, err := conn.Write(q, n, obj); err != nil {
						return
					}
				}
			})
		}
	}
	c.SetBoot(0, boot)
	c.Eng.Spawn("boot0", boot)

	var clientErr error
	rounds := 0
	c.Eng.Spawn("client", func(p *sim.Proc) {
		p.Sleep(50 * sim.Microsecond)
		cfg := sock.SessionConfig{Eng: c.Eng, Name: "echo", Tel: c.Nodes[1].Tel,
			Targets: c.Targets(1, 0, 80), Rounds: 10}
		s, err := sock.DialSession(p, cfg)
		if err != nil {
			clientErr = err
			return
		}
		for i := 0; i < 20; i++ {
			if _, err := s.Write(p, 1024, nil); err != nil {
				clientErr = err
				return
			}
			got := 0
			for got < 1024 {
				n, _, err := s.Read(p, 1024-got)
				if err != nil {
					clientErr = err
					return
				}
				got += n
			}
			rounds++
			p.Sleep(2 * sim.Millisecond)
		}
	})
	c.Run(2 * sim.Second)

	if rounds == 0 {
		t.Fatalf("client never completed a round before the crash (clientErr=%v)", clientErr)
	}
	if !errors.Is(clientErr, sock.ErrSessionResume) {
		t.Fatalf("client error = %v, want ErrSessionResume", clientErr)
	}
	if got := sessionCounter(c.Nodes[0], "resumes_stale"); got == 0 {
		t.Errorf("server recorded no stale resume rejection")
	}
	if _, ok := anyRingWith(c, 0, "resume-rejected-stale"); !ok {
		t.Errorf("no server-side ring recorded resume-rejected-stale")
	}
	if _, ok := anyRingWith(c, 1, "resume-rejected-stale"); !ok {
		t.Errorf("no client-side ring recorded resume-rejected-stale")
	}
}

// TestCrashThenAuditThenRebirth: the leak auditor must account a dead
// incarnation cleanly — every descriptor the crash stranded is either
// reclaimed by the surviving peers' abort paths or attributed to the
// corpse, not reported as an application leak — and a reborn
// incarnation must start with a clean slate.
func TestCrashThenAuditThenRebirth(t *testing.T) {
	c := cluster.New(cluster.Config{Nodes: 2, Failover: true, Seed: 9})

	c.Eng.Spawn("server", func(p *sim.Proc) {
		l, err := c.Nodes[0].Sub.Listen(p, 80, 4)
		if err != nil {
			return
		}
		for {
			conn, err := l.Accept(p)
			if err != nil {
				return
			}
			c.Eng.Spawn("srv-echo", func(q *sim.Proc) {
				for {
					n, objs, err := conn.Read(q, 64<<10)
					if err != nil || n == 0 {
						return
					}
					var obj any
					if len(objs) > 0 {
						obj = objs[len(objs)-1]
					}
					if _, err := conn.Write(q, n, obj); err != nil {
						return
					}
				}
			})
		}
	})

	sawReset := false
	c.Eng.Spawn("client", func(p *sim.Proc) {
		p.Sleep(50 * sim.Microsecond)
		conn, err := c.Nodes[1].Sub.Dial(p, c.Nodes[0].Sub.Addr(), 80)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		for {
			if _, err := conn.Write(p, 512, nil); err != nil {
				sawReset = true
				break
			}
			if _, _, err := conn.Read(p, 512); err != nil {
				sawReset = true
				break
			}
			p.Sleep(1 * sim.Millisecond)
		}
		conn.Close(p)
	})

	c.Eng.At(sim.Time(8*sim.Millisecond), func() { c.Kill(0) })
	c.Run(500 * sim.Millisecond)

	if !sawReset {
		t.Fatalf("client never observed the crash")
	}
	if rep := audit.Cluster(c); !rep.Clean() {
		t.Errorf("audit after crash: %d finding(s): %v", len(rep.Findings), rep.Findings)
	}

	c.Rebirth(0)
	c.Run(600 * sim.Millisecond)
	if got := c.Nodes[0].Incarnation; got != 2 {
		t.Errorf("incarnation after rebirth = %d, want 2", got)
	}
	if rep := audit.Cluster(c); !rep.Clean() {
		t.Errorf("audit after rebirth: %d finding(s): %v", len(rep.Findings), rep.Findings)
	}
}
