// Package audit is the host-wide descriptor-leak auditor: it walks every
// node's resource pools — the substrate's active-socket table, posted
// descriptors, credit counters and eager staging pool, or the kernel
// stack's demultiplexing tables — and reports anything that violates the
// paper's Section 5.3 resource contract ("every descriptor is either
// used or unposted"). The chaos and overload suites run it after every
// scenario: a clean report is the machine-checked form of the paper's
// claim that connection churn and failures leak nothing.
//
// The auditor only observes. It never purges or repairs; callers that
// expect residual control traffic (close messages that raced a cleanup)
// should call each substrate's PurgeStale first, exactly as a real
// teardown path would.
package audit

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
)

// Finding is one invariant violation on one node.
type Finding struct {
	// Node is the index of the offending node in the cluster.
	Node int
	// Kind is a short machine-matchable class, e.g. "orphan-descriptor",
	// "credit-bounds", "uq-stale", "closed-conn".
	Kind string
	// Detail is the human-readable description.
	Detail string
}

func (f Finding) String() string {
	return fmt.Sprintf("node %d: %s: %s", f.Node, f.Kind, f.Detail)
}

// Report is the result of one audit pass.
type Report struct {
	Findings []Finding
}

// Clean reports whether the audit found nothing.
func (r *Report) Clean() bool { return len(r.Findings) == 0 }

// String renders the report, one finding per line ("clean" when empty).
func (r *Report) String() string {
	if r.Clean() {
		return "audit: clean"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "audit: %d finding(s)\n", len(r.Findings))
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "  %s\n", f)
	}
	return strings.TrimRight(b.String(), "\n")
}

// ByKind counts findings per kind.
func (r *Report) ByKind() map[string]int {
	m := make(map[string]int)
	for _, f := range r.Findings {
		m[f.Kind]++
	}
	return m
}

// Cluster audits every node of c and returns the combined report. Run it
// at quiescence — after the workload's sockets are closed and the event
// queue has drained — since descriptors legitimately held by blocked
// operations would otherwise be reported as orphans.
func Cluster(c *cluster.Cluster) *Report {
	r := &Report{}
	for i, n := range c.Nodes {
		add := func(kind, detail string) {
			r.Findings = append(r.Findings, Finding{Node: i, Kind: kind, Detail: detail})
		}
		if n.Sub != nil {
			n.Sub.AuditResources(add)
		}
		if n.Stack != nil {
			n.Stack.AuditResources(add)
		}
	}
	return r
}
