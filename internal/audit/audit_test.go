package audit

import (
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/emp"
	"repro/internal/sim"
)

// TestCleanAfterWorkload: a full application run that closes its sockets
// must audit clean on every node, both transports.
func TestCleanAfterWorkload(t *testing.T) {
	for _, tr := range []cluster.Transport{cluster.TransportSubstrate, cluster.TransportTCP} {
		c := cluster.New(cluster.Config{Nodes: 2, Transport: tr, Seed: 11})
		if res := apps.RunFTP(c, 256<<10); res.Err != nil {
			t.Fatalf("transport %v: ftp: %v", tr, res.Err)
		}
		for _, n := range c.Nodes {
			if n.Sub != nil {
				n.Sub.PurgeStale()
			}
		}
		rep := Cluster(c)
		if !rep.Clean() {
			t.Fatalf("transport %v: %s", tr, rep)
		}
		if rep.String() != "audit: clean" {
			t.Fatalf("clean report renders %q", rep.String())
		}
	}
}

// TestDetectsOrphanedDescriptor: a descriptor posted outside any
// socket's ownership and never unposted is exactly the leak the auditor
// exists to catch.
func TestDetectsOrphanedDescriptor(t *testing.T) {
	c := cluster.NewSubstrate(2, nil)
	c.Eng.Spawn("leaker", func(p *sim.Proc) {
		c.Nodes[0].Sub.EP.PostRecv(p, emp.AnySource, emp.Tag(0x2F00), 64, 700)
	})
	c.Run(sim.Second)
	rep := Cluster(c)
	if rep.Clean() {
		t.Fatal("auditor missed an orphaned descriptor")
	}
	if rep.ByKind()["orphan-descriptor"] == 0 {
		t.Fatalf("findings lack orphan-descriptor kind: %s", rep)
	}
	if !strings.Contains(rep.String(), "node 0") {
		t.Fatalf("finding not attributed to node 0: %s", rep)
	}
	// Node 1 must stay clean: findings are per-node.
	for _, f := range rep.Findings {
		if f.Node != 0 {
			t.Fatalf("spurious finding on node %d: %s", f.Node, f)
		}
	}
}

// TestSurvivesKilledNode: auditing a cluster with a crashed node must
// not panic and must not blame the dead node for descriptors its crash
// abandoned (crash cleanup is the fault framework's job, audited only
// through the gauges it promises to zero).
func TestSurvivesKilledNode(t *testing.T) {
	c := cluster.NewSubstrate(3, nil)
	c.Eng.Spawn("killer", func(p *sim.Proc) {
		p.Sleep(10 * sim.Microsecond)
		c.Kill(1)
	})
	c.Run(sim.Second)
	for _, n := range c.Nodes {
		if n.Sub != nil && !n.Sub.Dead() {
			n.Sub.PurgeStale()
		}
	}
	if rep := Cluster(c); !rep.Clean() {
		t.Fatalf("idle cluster with one crash audits dirty: %s", rep)
	}
}
