package telemetry

import "repro/internal/sim"

// Span is one operation's latency decomposition: an ordered list of
// named virtual-time marks stamped as the operation crosses layers
// (write enqueue, EMP fragment post, first frame on the wire,
// tag match, completion delivery, receive staging, read wake). Spans
// ride the message payload end to end — the substrate carries one on
// its wire header, TCP on segment object boundaries — so the receiver
// can account the whole path without any extra wire state.
//
// Marks never charge simulated time; instrumented runs keep the exact
// timings of uninstrumented ones. All methods are nil-receiver safe, so
// hot paths mark unconditionally and pay nothing when telemetry is off.
type Span struct {
	Path  string // "eager", "rend", or "tcp"
	Size  int    // operation payload bytes, for size classing
	Marks []SpanMark
}

// SpanMark is one named instant inside a span.
type SpanMark struct {
	Name string
	At   sim.Time
}

// Spanned is implemented by payload objects that carry a latency span,
// letting lower layers (EMP firmware, TCP segments) stamp marks by type
// assertion without importing the layer that created the span.
type Spanned interface {
	TelemetrySpan() *Span
}

// NewSpan starts a span on the given path with an initial mark. Returns
// nil — a valid, free-to-mark span — when the registry is nil.
func (r *Registry) NewSpan(path string, size int, mark string, at sim.Time) *Span {
	if r == nil {
		return nil
	}
	s := &Span{Path: path, Size: size}
	s.Mark(mark, at)
	return s
}

// Mark appends a named instant. Safe on a nil receiver.
func (s *Span) Mark(name string, at sim.Time) {
	if s == nil {
		return
	}
	s.Marks = append(s.Marks, SpanMark{Name: name, At: at})
}

// MarkOnce appends the mark only if no mark with that name exists yet;
// retransmission paths use it so a span records first-transmission
// instants. Safe on a nil receiver.
func (s *Span) MarkOnce(name string, at sim.Time) {
	if s == nil {
		return
	}
	for _, m := range s.Marks {
		if m.Name == name {
			return
		}
	}
	s.Marks = append(s.Marks, SpanMark{Name: name, At: at})
}

// SizeClass buckets a payload size the way the paper's figures do:
// small control-sized ops, a page-ish midrange, and bulk.
func SizeClass(n int) string {
	switch {
	case n <= 64:
		return "64B"
	case n <= 1024:
		return "1KB"
	case n <= 16<<10:
		return "16KB"
	default:
		return "big"
	}
}

// RecordSpan folds a completed span into the registry's latency
// histograms: one histogram per adjacent mark pair (the stage
// decomposition) and one for the end-to-end first-to-last duration,
// keyed by path and size class. Because stages telescope — each stage's
// end is the next stage's start — the per-stage sums add up to the
// end-to-end sum exactly. No-op when the registry or span is nil or the
// span has fewer than two marks.
func (r *Registry) RecordSpan(s *Span) {
	if r == nil || s == nil || len(s.Marks) < 2 {
		return
	}
	prefix := s.Path + "/" + SizeClass(s.Size) + "/"
	for i := 1; i < len(s.Marks); i++ {
		d := s.Marks[i].At.Sub(s.Marks[i-1].At)
		r.Histogram("latency", prefix+s.Marks[i-1].Name+"->"+s.Marks[i].Name, LatencyBounds()).ObserveDuration(d)
	}
	e2e := s.Marks[len(s.Marks)-1].At.Sub(s.Marks[0].At)
	r.Histogram("latency", prefix+"e2e", LatencyBounds()).ObserveDuration(e2e)
}
