package telemetry

import "repro/internal/sim"

// Histogram is a fixed-bucket histogram with bounded memory: unlike
// sim.Sample, which retains every observation, a Histogram holds one
// int64 per bucket regardless of how many values it absorbs, so it is
// safe on long-running paths. Buckets are defined by ascending upper
// bounds; one implicit overflow bucket catches values above the last
// bound. Exact Sum/Min/Max are tracked alongside so means are exact and
// interpolated percentiles can be clamped to the observed range.
type Histogram struct {
	bounds []float64
	counts []int64 // len(bounds)+1; last is overflow
	count  int64
	sum    float64
	min    float64
	max    float64
}

// NewHistogram returns a histogram over the given ascending bucket
// upper bounds. An empty bounds slice yields a single overflow bucket
// (still a valid bounded accumulator).
func NewHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
}

// LatencyBounds returns the default latency bucket bounds in
// nanoseconds: doubling from 500ns to ~33ms. Seventeen buckets plus
// overflow spans everything from a cache-warm eager send to a
// retransmission-timeout stall.
func LatencyBounds() []float64 {
	bounds := make([]float64, 0, 17)
	for b := 500.0; b <= 33e6; b *= 2 {
		bounds = append(bounds, b)
	}
	return bounds
}

// Observe adds one value. Safe on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if h.count == 1 || v > h.max {
		h.max = v
	}
}

// ObserveDuration adds one virtual-time duration, in nanoseconds.
func (h *Histogram) ObserveDuration(d sim.Duration) { h.Observe(float64(d)) }

// Count reports the number of observations. Zero on a nil receiver.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum reports the exact sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean reports the exact mean, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min reports the smallest observation, or 0 when empty.
func (h *Histogram) Min() float64 {
	if h == nil {
		return 0
	}
	return h.min
}

// Max reports the largest observation, or 0 when empty.
func (h *Histogram) Max() float64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Bounds returns a copy of the bucket upper bounds.
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	b := make([]float64, len(h.bounds))
	copy(b, h.bounds)
	return b
}

// Counts returns a copy of the per-bucket counts (overflow last).
func (h *Histogram) Counts() []int64 {
	if h == nil {
		return nil
	}
	c := make([]int64, len(h.counts))
	copy(c, h.counts)
	return c
}

// Percentile estimates the p-th percentile (0 < p <= 100) by linear
// interpolation within the containing bucket, clamped to the observed
// [Min, Max] range so a single observation reports itself exactly.
// Returns 0 when empty.
func (h *Histogram) Percentile(p float64) float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	target := p / 100 * float64(h.count)
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, n := range h.counts {
		if n == 0 {
			continue
		}
		prev := cum
		cum += n
		if float64(cum) < target {
			continue
		}
		lo := h.min
		if i > 0 && h.bounds[i-1] > lo {
			lo = h.bounds[i-1]
		}
		hi := h.max
		if i < len(h.bounds) && h.bounds[i] < hi {
			hi = h.bounds[i]
		}
		frac := (target - float64(prev)) / float64(n)
		v := lo + frac*(hi-lo)
		if v < h.min {
			v = h.min
		}
		if v > h.max {
			v = h.max
		}
		return v
	}
	return h.max
}

// Merge folds other into h bucket-wise. Histograms with different
// bounds cannot be merged; Merge reports whether the merge happened.
// Safe when either side is nil (reports false).
func (h *Histogram) Merge(other *Histogram) bool {
	if h == nil || other == nil {
		return false
	}
	if len(h.bounds) != len(other.bounds) {
		return false
	}
	for i := range h.bounds {
		if h.bounds[i] != other.bounds[i] {
			return false
		}
	}
	if other.count == 0 {
		return true
	}
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if h.count == 0 || other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
	return true
}
