package telemetry

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"repro/internal/sim"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(LatencyBounds())
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Fatalf("empty histogram not zeroed: count=%d sum=%v mean=%v", h.Count(), h.Sum(), h.Mean())
	}
	if p := h.Percentile(50); p != 0 {
		t.Fatalf("empty percentile = %v, want 0", p)
	}
	if p := h.Percentile(99); p != 0 {
		t.Fatalf("empty p99 = %v, want 0", p)
	}
}

func TestHistogramSingleValue(t *testing.T) {
	h := NewHistogram([]float64{10, 100, 1000})
	h.Observe(42)
	if h.Count() != 1 || h.Sum() != 42 || h.Min() != 42 || h.Max() != 42 {
		t.Fatalf("single value stats wrong: %+v", h)
	}
	// Percentiles clamp to the observed range, so one value reports
	// itself exactly at every percentile.
	for _, p := range []float64{1, 50, 99, 100} {
		if got := h.Percentile(p); got != 42 {
			t.Fatalf("p%v = %v, want 42", p, got)
		}
	}
}

func TestHistogramSingleBucket(t *testing.T) {
	// No explicit bounds: everything lands in the overflow bucket, and
	// the histogram still works as a bounded accumulator.
	h := NewHistogram(nil)
	for i := 1; i <= 10; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 10 || h.Sum() != 55 {
		t.Fatalf("count=%d sum=%v", h.Count(), h.Sum())
	}
	if c := h.Counts(); len(c) != 1 || c[0] != 10 {
		t.Fatalf("counts = %v, want [10]", c)
	}
	if p := h.Percentile(100); p != 10 {
		t.Fatalf("p100 = %v, want max 10", p)
	}
	if p := h.Percentile(50); p < 1 || p > 10 {
		t.Fatalf("p50 = %v out of observed range", p)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram([]float64{10, 20})
	h.Observe(5)
	h.Observe(15)
	h.Observe(1e9) // far beyond the last bound
	c := h.Counts()
	if len(c) != 3 || c[0] != 1 || c[1] != 1 || c[2] != 1 {
		t.Fatalf("counts = %v, want [1 1 1]", c)
	}
	if h.Max() != 1e9 {
		t.Fatalf("max = %v", h.Max())
	}
	// The overflow bucket interpolates between the last bound and the
	// observed max, so percentiles stay finite.
	if p := h.Percentile(99); p <= 20 || p > 1e9 {
		t.Fatalf("p99 = %v, want in (20, 1e9]", p)
	}
}

func TestHistogramPercentileInterpolation(t *testing.T) {
	// 100 observations spread uniformly over one bucket (0, 100]:
	// linear interpolation should land p50 near the bucket midpoint.
	h := NewHistogram([]float64{100, 200})
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	p50 := h.Percentile(50)
	if math.Abs(p50-50) > 2 {
		t.Fatalf("p50 = %v, want ~50", p50)
	}
	p90 := h.Percentile(90)
	if math.Abs(p90-90) > 2 {
		t.Fatalf("p90 = %v, want ~90", p90)
	}
	if h.Percentile(100) != 100 {
		t.Fatalf("p100 = %v, want 100", h.Percentile(100))
	}
	// Bucket boundaries: exactly at a bound stays in the lower bucket.
	h2 := NewHistogram([]float64{10})
	h2.Observe(10)
	if c := h2.Counts(); c[0] != 1 || c[1] != 0 {
		t.Fatalf("bound-inclusive bucketing broken: %v", c)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram([]float64{10, 100})
	b := NewHistogram([]float64{10, 100})
	a.Observe(5)
	a.Observe(50)
	b.Observe(500)
	if !a.Merge(b) {
		t.Fatal("merge of identical bounds failed")
	}
	if a.Count() != 3 || a.Sum() != 555 || a.Min() != 5 || a.Max() != 500 {
		t.Fatalf("merged stats wrong: count=%d sum=%v min=%v max=%v", a.Count(), a.Sum(), a.Min(), a.Max())
	}
	if c := a.Counts(); c[0] != 1 || c[1] != 1 || c[2] != 1 {
		t.Fatalf("merged counts = %v", c)
	}
	// Mismatched bounds refuse to merge and leave the target intact.
	c := NewHistogram([]float64{1, 2, 3})
	if c.Merge(a) {
		t.Fatal("merge across different bounds should fail")
	}
	if c.Count() != 0 {
		t.Fatal("failed merge mutated the target")
	}
	// Merging an empty histogram into an empty one keeps both empty.
	d := NewHistogram([]float64{10, 100})
	e := NewHistogram([]float64{10, 100})
	if !d.Merge(e) || d.Count() != 0 {
		t.Fatalf("empty merge broke: count=%d", d.Count())
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	// Every path must be a no-op, not a panic, when telemetry is off.
	r.Counter("l", "m").Inc()
	r.Counter("l", "m").Add(3)
	r.Gauge("l", "m").Set(7)
	r.Histogram("l", "m", nil).Observe(1)
	r.RegisterSource("l", func() []Stat { return nil })
	sp := r.NewSpan("eager", 64, "write", 0)
	if sp != nil {
		t.Fatal("nil registry must yield nil span")
	}
	sp.Mark("post", 10)
	sp.MarkOnce("post", 10)
	r.RecordSpan(sp)
	r.Flight("c").Record(0, "connect", "")
	r.Flight("c").Recordf(0, "connect", "try %d", 1)
	r.DumpFlight("c", "reset")
	r.DumpAllFlights("audit")
	if d := r.Dumps(); d != nil {
		t.Fatalf("nil registry dumps = %v", d)
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	var h *Histogram
	h.Observe(1)
	if h.Percentile(50) != 0 || h.Merge(NewHistogram(nil)) {
		t.Fatal("nil histogram misbehaved")
	}
}

func TestSpanStageSumsMatchEndToEnd(t *testing.T) {
	r := New()
	s := r.NewSpan("eager", 512, "write", 100)
	s.Mark("post", 250)
	s.Mark("wire", 1000)
	s.MarkOnce("wire", 2000) // retransmission must not re-mark
	s.Mark("deliver", 4000)
	s.Mark("read", 5000)
	r.RecordSpan(s)
	snap := r.Snapshot()
	var stageSum, e2e float64
	for _, h := range snap.Hists {
		if h.Metric == "eager/1KB/e2e" {
			e2e = h.Sum
		} else {
			stageSum += h.Sum
		}
	}
	if e2e != 4900 {
		t.Fatalf("e2e sum = %v, want 4900", e2e)
	}
	if stageSum != e2e {
		t.Fatalf("stage sums %v != e2e %v", stageSum, e2e)
	}
}

func TestFlightRingWrapAndLRU(t *testing.T) {
	r := New()
	rec := r.Flight("a")
	for i := 0; i < flightCap+5; i++ {
		rec.Recordf(sim.Time(i), "ev", "n=%d", i)
	}
	evs := rec.Events()
	if len(evs) != flightCap {
		t.Fatalf("ring holds %d events, want %d", len(evs), flightCap)
	}
	if evs[0].At != 5 || evs[len(evs)-1].At != sim.Time(flightCap+4) {
		t.Fatalf("ring order wrong: first=%v last=%v", evs[0].At, evs[len(evs)-1].At)
	}
	if rec.Total() != int64(flightCap+5) {
		t.Fatalf("total = %d", rec.Total())
	}
	// Churn past the LRU bound: the oldest untouched recorder is gone,
	// a touched one survives.
	for i := 0; i < maxFlights; i++ {
		r.Flight(fmt.Sprintf("conn-%03d", i)).Record(0, "connect", "")
		r.Flight("a").Record(0, "keep", "") // keep "a" hot
	}
	if _, ok := r.flights["a"]; !ok {
		t.Fatal("hot recorder evicted")
	}
	if len(r.flights) > maxFlights {
		t.Fatalf("%d live recorders, cap %d", len(r.flights), maxFlights)
	}
	if _, ok := r.flights["conn-000"]; ok {
		t.Fatal("LRU eviction did not discard the cold recorder")
	}
}

func TestDumpCapture(t *testing.T) {
	r := New()
	r.Flight("x").Record(10, "connect", "ok")
	r.Flight("x").Record(20, "retransmit", "seq=3")
	d := r.DumpFlight("x", "reset")
	if d == nil || len(d.Events) != 2 || d.Reason != "reset" {
		t.Fatalf("dump = %+v", d)
	}
	if r.DumpFlight("unknown", "reset") != nil {
		t.Fatal("dump of unknown conn should be nil")
	}
	if got := len(r.Dumps()); got != 1 {
		t.Fatalf("retained dumps = %d", got)
	}
	// The dump cap holds.
	for i := 0; i < maxDumps+8; i++ {
		id := fmt.Sprintf("y%02d", i)
		r.Flight(id).Record(0, "connect", "")
		r.DumpFlight(id, "audit")
	}
	if got := len(r.Dumps()); got != maxDumps {
		t.Fatalf("dump cap broken: %d", got)
	}
	var buf bytes.Buffer
	FprintDump(&buf, *d)
	if buf.Len() == 0 {
		t.Fatal("FprintDump wrote nothing")
	}
}

func TestSnapshotDeterministicJSON(t *testing.T) {
	build := func() *Registry {
		r := New()
		// Insert in one order here; map iteration would scramble it if
		// Snapshot didn't sort.
		r.Counter("core", "msgs_sent").Add(5)
		r.Counter("emp", "retransmits").Add(2)
		r.Counter("core", "credit_stalls").Inc()
		r.Gauge("emp", "uq_bytes").Set(4096)
		r.Histogram("latency", "eager/64B/e2e", LatencyBounds()).Observe(12e3)
		r.RegisterSource("sim", func() []Stat { return []Stat{{Name: "wakeups", Value: 17}} })
		return r
	}
	var a, b bytes.Buffer
	if err := build().Snapshot().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("snapshot JSON not deterministic:\n%s\n---\n%s", a.String(), b.String())
	}
	snap := build().Snapshot()
	if len(snap.Counters) != 4 {
		t.Fatalf("counters = %+v", snap.Counters)
	}
	// Sorted by layer then metric, sources folded in.
	order := []string{"core/credit_stalls", "core/msgs_sent", "emp/retransmits", "sim/wakeups"}
	for i, want := range order {
		got := snap.Counters[i].Layer + "/" + snap.Counters[i].Metric
		if got != want {
			t.Fatalf("counter %d = %s, want %s", i, got, want)
		}
	}
}

func TestRegistryMerge(t *testing.T) {
	a, b := New(), New()
	a.Counter("core", "msgs_sent").Add(3)
	b.Counter("core", "msgs_sent").Add(4)
	b.Counter("tcp", "segs_in").Add(9)
	a.Histogram("latency", "tcp/1KB/e2e", LatencyBounds()).Observe(1000)
	b.Histogram("latency", "tcp/1KB/e2e", LatencyBounds()).Observe(3000)
	b.Flight("n1:5000-n0:80").Record(5, "reset", "peer gone")
	b.DumpFlight("n1:5000-n0:80", "reset")
	a.Merge(b)
	snap := a.Snapshot()
	byKey := map[string]int64{}
	for _, c := range snap.Counters {
		byKey[c.Layer+"/"+c.Metric] = c.Value
	}
	if byKey["core/msgs_sent"] != 7 || byKey["tcp/segs_in"] != 9 {
		t.Fatalf("merged counters = %v", byKey)
	}
	for _, h := range snap.Hists {
		if h.Metric == "tcp/1KB/e2e" && (h.Count != 2 || h.Sum != 4000) {
			t.Fatalf("merged hist = %+v", h)
		}
	}
	if len(a.Dumps()) != 1 {
		t.Fatalf("merged dumps = %d", len(a.Dumps()))
	}
}
