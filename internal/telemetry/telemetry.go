// Package telemetry is the host-scoped observability layer: a registry
// of counters, gauges, and fixed-bucket histograms keyed by
// layer/metric/connection, latency-decomposition spans stamped at layer
// crossings, and per-connection flight recorders dumped when a
// connection dies unexpectedly.
//
// The registry is deliberately passive: it never schedules events and
// never charges simulated time, so instrumented and uninstrumented runs
// produce byte-identical timings. Every method is nil-receiver safe —
// layers built outside a cluster (unit tests, microbenches) simply carry
// a nil *Registry and all instrumentation collapses to cheap no-ops.
package telemetry

import (
	"encoding/json"
	"io"
	"sort"
)

// Key identifies one metric within a registry. Conn is empty for
// host-wide metrics and carries the connection id for per-connection
// ones.
type Key struct {
	Layer  string
	Metric string
	Conn   string
}

func keyLess(a, b Key) bool {
	if a.Layer != b.Layer {
		return a.Layer < b.Layer
	}
	if a.Metric != b.Metric {
		return a.Metric < b.Metric
	}
	return a.Conn < b.Conn
}

// Counter is a monotonically increasing event count.
type Counter struct{ v int64 }

// Inc adds one to the counter. Safe on a nil receiver.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n to the counter. Safe on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v += n
	}
}

// Value reports the current count. Zero on a nil receiver.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is an instantaneous level (queue depth, bytes staged).
type Gauge struct{ v int64 }

// Set replaces the gauge value. Safe on a nil receiver.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v = n
	}
}

// Add moves the gauge by n (negative to decrease). Safe on a nil
// receiver.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v += n
	}
}

// Value reports the current level. Zero on a nil receiver.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Stat is one named value pulled from an external source at snapshot
// time. Sources let the scattered pre-existing stat structs
// (emp.Endpoint.Stats, tcpip.Stack counters, sock.Poller counters,
// sim.Engine.Wakeups, faults.FaultStats) feed the registry without
// double-counting: they stay the owners, the registry reads through.
type Stat struct {
	Name  string
	Value int64
}

type source struct {
	layer string
	fn    func() []Stat
}

// Registry is the per-host metric store. The zero value is not usable;
// call New. A nil *Registry is a valid "telemetry off" value: every
// method no-ops.
type Registry struct {
	counters map[Key]*Counter
	gauges   map[Key]*Gauge
	hists    map[Key]*Histogram
	sources  []source

	flights  map[string]*Recorder
	flightLR []string // least-recently-used first
	dumps    []Dump
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[Key]*Counter),
		gauges:   make(map[Key]*Gauge),
		hists:    make(map[Key]*Histogram),
		flights:  make(map[string]*Recorder),
	}
}

// Counter returns the counter for (layer, metric), creating it on first
// use. Returns nil (a valid no-op counter) on a nil registry.
func (r *Registry) Counter(layer, metric string) *Counter {
	if r == nil {
		return nil
	}
	k := Key{Layer: layer, Metric: metric}
	c := r.counters[k]
	if c == nil {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns the gauge for (layer, metric), creating it on first
// use. Returns nil (a valid no-op gauge) on a nil registry.
func (r *Registry) Gauge(layer, metric string) *Gauge {
	if r == nil {
		return nil
	}
	k := Key{Layer: layer, Metric: metric}
	g := r.gauges[k]
	if g == nil {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns the histogram for (layer, metric), creating it with
// the given bucket bounds on first use (later calls reuse the existing
// bounds). Returns nil (a valid no-op histogram) on a nil registry.
func (r *Registry) Histogram(layer, metric string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	k := Key{Layer: layer, Metric: metric}
	h := r.hists[k]
	if h == nil {
		h = NewHistogram(bounds)
		r.hists[k] = h
	}
	return h
}

// RegisterSource registers a pull-through stat source under the given
// layer name. fn runs at Snapshot time and must return stats in a
// deterministic order. No-op on a nil registry.
func (r *Registry) RegisterSource(layer string, fn func() []Stat) {
	if r == nil {
		return
	}
	r.sources = append(r.sources, source{layer: layer, fn: fn})
}

// ReplaceSource registers fn under the given layer name, first removing
// any source already registered under that layer. Per-node layers use
// this when a host is rebuilt after a crash–restart: the reborn
// incarnation's stats replace the dead incarnation's, so gauges do not
// bleed across incarnations. Aggregation paths (Merge) keep using the
// additive append semantics. No-op on a nil registry.
func (r *Registry) ReplaceSource(layer string, fn func() []Stat) {
	if r == nil {
		return
	}
	kept := r.sources[:0]
	for _, src := range r.sources {
		if src.layer != layer {
			kept = append(kept, src)
		}
	}
	r.sources = append(kept, source{layer: layer, fn: fn})
}

// MetricSnap is one counter or gauge in a snapshot.
type MetricSnap struct {
	Layer  string `json:"layer"`
	Metric string `json:"metric"`
	Conn   string `json:"conn,omitempty"`
	Value  int64  `json:"value"`
}

// HistSnap is one histogram in a snapshot. Quantiles are interpolated;
// Counts has one extra trailing bucket for observations above the last
// bound.
type HistSnap struct {
	Layer  string    `json:"layer"`
	Metric string    `json:"metric"`
	Conn   string    `json:"conn,omitempty"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
	P50    float64   `json:"p50"`
	P99    float64   `json:"p99"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
}

// Snapshot is the full, deterministic state of a registry: every series
// sorted by (layer, metric, conn), source stats folded in as counters.
type Snapshot struct {
	Counters []MetricSnap `json:"counters"`
	Gauges   []MetricSnap `json:"gauges,omitempty"`
	Hists    []HistSnap   `json:"histograms,omitempty"`
}

// Snapshot captures the registry. Same seed, same workload — same
// snapshot, byte for byte, because every series is emitted in sorted
// key order and sources run in registration order. A nil registry
// snapshots empty.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{Counters: []MetricSnap{}}
	if r == nil {
		return s
	}
	merged := make(map[Key]int64, len(r.counters))
	for k, c := range r.counters {
		merged[k] = c.Value()
	}
	for _, src := range r.sources {
		for _, st := range src.fn() {
			merged[Key{Layer: src.layer, Metric: st.Name}] += st.Value
		}
	}
	keys := make([]Key, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })
	for _, k := range keys {
		s.Counters = append(s.Counters, MetricSnap{Layer: k.Layer, Metric: k.Metric, Conn: k.Conn, Value: merged[k]})
	}

	gkeys := make([]Key, 0, len(r.gauges))
	for k := range r.gauges {
		gkeys = append(gkeys, k)
	}
	sort.Slice(gkeys, func(i, j int) bool { return keyLess(gkeys[i], gkeys[j]) })
	for _, k := range gkeys {
		s.Gauges = append(s.Gauges, MetricSnap{Layer: k.Layer, Metric: k.Metric, Conn: k.Conn, Value: r.gauges[k].Value()})
	}

	hkeys := make([]Key, 0, len(r.hists))
	for k := range r.hists {
		hkeys = append(hkeys, k)
	}
	sort.Slice(hkeys, func(i, j int) bool { return keyLess(hkeys[i], hkeys[j]) })
	for _, k := range hkeys {
		h := r.hists[k]
		s.Hists = append(s.Hists, HistSnap{
			Layer: k.Layer, Metric: k.Metric, Conn: k.Conn,
			Count: h.Count(), Sum: h.Sum(), Min: h.Min(), Max: h.Max(),
			P50: h.Percentile(50), P99: h.Percentile(99),
			Bounds: h.Bounds(), Counts: h.Counts(),
		})
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	blob, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(blob, '\n'))
	return err
}

// Merge folds other's counters, gauges, histograms, and flight dumps
// into r (cross-node aggregation for cluster-wide reports). Histograms
// merge bucket-wise; mismatched bounds are skipped. No-op if either
// side is nil.
func (r *Registry) Merge(other *Registry) {
	if r == nil || other == nil {
		return
	}
	for k, c := range other.counters {
		rc := r.counters[k]
		if rc == nil {
			rc = &Counter{}
			r.counters[k] = rc
		}
		rc.Add(c.Value())
	}
	for k, g := range other.gauges {
		rg := r.gauges[k]
		if rg == nil {
			rg = &Gauge{}
			r.gauges[k] = rg
		}
		rg.Add(g.Value())
	}
	for k, h := range other.hists {
		rh := r.hists[k]
		if rh == nil {
			rh = NewHistogram(h.Bounds())
			r.hists[k] = rh
		}
		rh.Merge(h)
	}
	r.dumps = append(r.dumps, other.dumps...)
	if len(r.dumps) > maxDumps {
		r.dumps = r.dumps[:maxDumps]
	}
	for _, src := range other.sources {
		r.sources = append(r.sources, src)
	}
}
