package telemetry

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
)

// Flight-recorder limits: how many connections keep a live ring, how
// many events each ring holds, and how many dumps a registry retains.
// All three bound memory on hosts that churn through many connections.
const (
	maxFlights = 64
	flightCap  = 32
	maxDumps   = 16
)

// FlightEvent is one protocol event in a connection's flight-recorder
// ring: connection setup and refusal, credit grants and stalls,
// unexpected-queue evictions, retransmission timeouts, shutdown/FIN
// progress, deadline and linger expiry.
type FlightEvent struct {
	At     sim.Time `json:"at"`
	Kind   string   `json:"kind"`
	Detail string   `json:"detail,omitempty"`
}

// Recorder is a fixed-size ring of the most recent protocol events on
// one connection. Recording is O(1) and never allocates after the ring
// fills.
type Recorder struct {
	id    string
	ring  []FlightEvent
	next  int
	total int64
}

// Record appends an event, overwriting the oldest once the ring is
// full. Safe on a nil receiver.
func (r *Recorder) Record(at sim.Time, kind, detail string) {
	if r == nil {
		return
	}
	ev := FlightEvent{At: at, Kind: kind, Detail: detail}
	if len(r.ring) < flightCap {
		r.ring = append(r.ring, ev)
	} else {
		r.ring[r.next%flightCap] = ev
	}
	r.next++
	r.total++
}

// Recordf is Record with a formatted detail string. Safe on a nil
// receiver; the format arguments are not evaluated into a string when
// the recorder is nil beyond normal Go argument evaluation.
func (r *Recorder) Recordf(at sim.Time, kind, format string, args ...any) {
	if r == nil {
		return
	}
	r.Record(at, kind, fmt.Sprintf(format, args...))
}

// Events returns the ring's events oldest first.
func (r *Recorder) Events() []FlightEvent {
	if r == nil {
		return nil
	}
	if len(r.ring) < flightCap {
		out := make([]FlightEvent, len(r.ring))
		copy(out, r.ring)
		return out
	}
	out := make([]FlightEvent, 0, flightCap)
	start := r.next % flightCap
	out = append(out, r.ring[start:]...)
	out = append(out, r.ring[:start]...)
	return out
}

// Total reports how many events were ever recorded (>= len(Events())
// once the ring has wrapped).
func (r *Recorder) Total() int64 {
	if r == nil {
		return 0
	}
	return r.total
}

// Dump is a flight-recorder ring captured at the moment something went
// wrong, plus why it was captured.
type Dump struct {
	Conn   string        `json:"conn"`
	Reason string        `json:"reason"`
	Total  int64         `json:"total_events"`
	Events []FlightEvent `json:"events"`
}

// Flight returns the flight recorder for the given connection id,
// creating it on first use. At most maxFlights recorders stay live; the
// least recently used is discarded beyond that, so connection churn
// cannot grow the registry. Returns nil (a valid no-op recorder) on a
// nil registry.
func (r *Registry) Flight(conn string) *Recorder {
	if r == nil {
		return nil
	}
	if rec := r.flights[conn]; rec != nil {
		r.flightTouch(conn)
		return rec
	}
	rec := &Recorder{id: conn}
	r.flights[conn] = rec
	r.flightLR = append(r.flightLR, conn)
	if len(r.flightLR) > maxFlights {
		evict := r.flightLR[0]
		r.flightLR = r.flightLR[1:]
		delete(r.flights, evict)
	}
	return rec
}

func (r *Registry) flightTouch(conn string) {
	for i, id := range r.flightLR {
		if id == conn {
			r.flightLR = append(append(r.flightLR[:i:i], r.flightLR[i+1:]...), conn)
			return
		}
	}
}

// FlightIDs lists the live recorder ids, sorted.
func (r *Registry) FlightIDs() []string {
	if r == nil {
		return nil
	}
	ids := make([]string, 0, len(r.flights))
	for id := range r.flights {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// DumpFlight captures the named connection's ring as a failure
// artifact. The registry retains at most maxDumps dumps (oldest kept —
// the first failure is usually the root cause). Returns the dump, or
// nil if the connection has no recorder or the registry is nil.
func (r *Registry) DumpFlight(conn, reason string) *Dump {
	if r == nil {
		return nil
	}
	rec := r.flights[conn]
	if rec == nil || rec.total == 0 {
		return nil
	}
	d := &Dump{Conn: conn, Reason: reason, Total: rec.total, Events: rec.Events()}
	if len(r.dumps) < maxDumps {
		r.dumps = append(r.dumps, *d)
	}
	return d
}

// DumpAllFlights captures every live ring (leak-audit findings often
// cannot name a single connection). Dumps beyond the registry cap are
// dropped.
func (r *Registry) DumpAllFlights(reason string) {
	if r == nil {
		return
	}
	for _, id := range r.FlightIDs() {
		r.DumpFlight(id, reason)
	}
}

// Dumps returns the retained failure artifacts, in capture order.
func (r *Registry) Dumps() []Dump {
	if r == nil {
		return nil
	}
	out := make([]Dump, len(r.dumps))
	copy(out, r.dumps)
	return out
}

// FprintDump renders one dump as an indented, human-readable event
// history.
func FprintDump(w io.Writer, d Dump) {
	fmt.Fprintf(w, "flight %s (%s, %d events", d.Conn, d.Reason, d.Total)
	if int(d.Total) > len(d.Events) {
		fmt.Fprintf(w, ", oldest %d lost", d.Total-int64(len(d.Events)))
	}
	fmt.Fprintf(w, "):\n")
	for _, ev := range d.Events {
		fmt.Fprintf(w, "  %12s  %-14s %s\n", ev.At, ev.Kind, ev.Detail)
	}
}
