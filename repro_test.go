package repro

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/sock"
)

func TestFacadeBuildsWorkingClusters(t *testing.T) {
	for _, tc := range []struct {
		name  string
		build func() *Cluster
	}{
		{"substrate", func() *Cluster { return NewSubstrateCluster(2, nil) }},
		{"tcp", func() *Cluster { return NewTCPCluster(2) }},
		{"tcp-big", func() *Cluster { return NewTCPBigCluster(2) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := tc.build()
			ok := false
			c.Eng.Spawn("server", func(p *Proc) {
				l, err := c.Nodes[0].Net.Listen(p, 80, 4)
				if err != nil {
					return
				}
				conn, err := l.Accept(p)
				if err != nil {
					return
				}
				if n, _, _ := sock.ReadFull(p, conn, 128); n == 128 {
					ok = true
				}
				conn.Close(p)
			})
			c.Eng.Spawn("client", func(p *Proc) {
				p.Sleep(Microseconds(10))
				conn, err := c.Nodes[1].Net.Dial(p, c.Addr(0), 80)
				if err != nil {
					return
				}
				conn.Write(p, 128, nil)
				conn.Close(p)
			})
			c.Run(Seconds(10))
			if !ok {
				t.Fatal("facade-built cluster did not move data")
			}
		})
	}
}

func TestFacadeOptionsFlowThrough(t *testing.T) {
	o := DefaultOptions()
	o.Credits = 7
	c := NewSubstrateCluster(2, &o)
	if c.Nodes[0].Sub.Opts.Credits != 7 {
		t.Fatal("options did not reach the substrate")
	}
	dgOpts := DatagramOptions()
	if dgOpts.Mode.String() != "DG" {
		t.Fatalf("DatagramOptions mode = %v", dgOpts.Mode)
	}
}

func TestDurationHelpers(t *testing.T) {
	if Seconds(1.5) != Duration(1_500_000_000) {
		t.Fatalf("Seconds(1.5) = %v", Seconds(1.5))
	}
	if Microseconds(2) != Duration(2000) {
		t.Fatalf("Microseconds(2) = %v", Microseconds(2))
	}
	if Seconds(1) != Duration(sim.Second) {
		t.Fatal("facade duration diverges from sim")
	}
}

func TestFullConfigCluster(t *testing.T) {
	c := NewCluster(ClusterConfig{Nodes: 3, Transport: TransportSubstrate, Seed: 5})
	if len(c.Nodes) != 3 || c.Nodes[0].Sub == nil {
		t.Fatal("NewCluster wiring wrong")
	}
	c2 := NewCluster(ClusterConfig{Nodes: 1, Transport: TransportTCPBig})
	if c2.Nodes[0].Stack == nil {
		t.Fatal("TCPBig transport missing stack")
	}
	if c2.Nodes[0].Stack.Cfg.SndBuf <= 16<<10 {
		t.Fatal("TCPBig should enlarge socket buffers")
	}
}
