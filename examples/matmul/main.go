// Matrix multiplication example: the paper's Section 7.5 workload — a
// 4-node distributed multiply where the master distributes row blocks
// and gathers partial results with select().
package main

import (
	"fmt"

	"repro"
	"repro/internal/apps"
)

func main() {
	fmt.Printf("%6s  %16s  %16s  %8s\n", "N", "substrate", "TCP", "speedup")
	for _, n := range []int{64, 128, 256, 384} {
		sub := apps.RunMatmul(repro.NewSubstrateCluster(4, nil), n)
		tcp := apps.RunMatmul(repro.NewTCPCluster(4), n)
		if sub.Err != nil || tcp.Err != nil {
			fmt.Printf("%6d  FAILED: sub=%v tcp=%v\n", n, sub.Err, tcp.Err)
			continue
		}
		fmt.Printf("%6d  %16v  %16v  %7.2fx\n", n, sub.Elapsed, tcp.Elapsed,
			float64(tcp.Elapsed)/float64(sub.Elapsed))
	}
}
