// FTP example: transfer a 32 MiB file from one node's RAM disk to
// another's over both transports, exercising the fd-tracking layer that
// routes the same read()/write() calls to files and sockets (the
// paper's Section 5.4 name-space overloading solution).
package main

import (
	"fmt"

	"repro"
	"repro/internal/apps"
)

func main() {
	const size = 32 << 20
	for _, tc := range []struct {
		name  string
		build func() *repro.Cluster
	}{
		{"substrate (data streaming)", func() *repro.Cluster { return repro.NewSubstrateCluster(2, nil) }},
		{"substrate (datagram)", func() *repro.Cluster {
			o := repro.DatagramOptions()
			return repro.NewSubstrateCluster(2, &o)
		}},
		{"kernel TCP", func() *repro.Cluster { return repro.NewTCPCluster(2) }},
	} {
		res := apps.RunFTP(tc.build(), size)
		if res.Err != nil {
			fmt.Printf("%-28s FAILED: %v\n", tc.name, res.Err)
			continue
		}
		fmt.Printf("%-28s %8.0f Mbps  (%d bytes in %v)\n", tc.name, res.Mbps(), res.Bytes, res.Elapsed)
	}
}
