// Raw EMP example: program the NIC-level message-passing layer directly
// — tagged sends, pre-posted receives, the unexpected queue — without
// the sockets substrate on top. This is the API the substrate maps
// sockets onto; comparing its timing against examples/quickstart shows
// what the sockets semantics cost.
package main

import (
	"fmt"

	"repro/internal/emp"
	"repro/internal/ethernet"
	"repro/internal/kernel"
	"repro/internal/nic"
	"repro/internal/sim"
)

func main() {
	eng := sim.NewEngine()
	sw := ethernet.NewSwitch(eng, ethernet.DefaultSwitchConfig())

	build := func() *emp.Endpoint {
		host := kernel.NewHost(eng, "host", 4, kernel.DefaultCosts())
		n := nic.New(eng, "nic", nic.DefaultConfig())
		n.Attach(sw)
		cfg := emp.DefaultEndpointConfig()
		cfg.UnexpectedSlots = 8
		return emp.NewEndpoint(eng, host, n, cfg)
	}
	a, b := build(), build()

	const tagPing, tagPong emp.Tag = 1, 2
	const iters = 10

	eng.Spawn("nodeB", func(p *sim.Proc) {
		for i := 0; i < iters; i++ {
			h := b.PostRecv(p, a.Addr(), tagPing, 4096, 1)
			msg, st := b.WaitRecv(p, h)
			if st != emp.StatusOK {
				fmt.Printf("B: recv failed: %v\n", st)
				return
			}
			b.Send(p, a.Addr(), tagPong, msg.Len, msg.Data, 2)
		}
	})
	eng.Spawn("nodeA", func(p *sim.Proc) {
		var total sim.Duration
		for i := 0; i < iters; i++ {
			h := a.PostRecv(p, b.Addr(), tagPong, 4096, 3)
			start := p.Now()
			a.Send(p, b.Addr(), tagPing, 4, fmt.Sprintf("ping-%d", i), 4)
			msg, st := a.WaitRecv(p, h)
			if st != emp.StatusOK {
				fmt.Printf("A: recv failed: %v\n", st)
				return
			}
			total += p.Now().Sub(start)
			_ = msg
		}
		fmt.Printf("raw EMP 4-byte one-way latency: %v (paper: ~28 us)\n",
			total/sim.Duration(2*iters))
	})
	// An unexpected message: sent before any receive is posted, parked
	// in the unexpected queue, claimed by a later post.
	eng.Spawn("unexpected", func(p *sim.Proc) {
		p.Sleep(5 * sim.Millisecond)
		a.Send(p, b.Addr(), 42, 64, "early bird", 5)
	})
	eng.Spawn("claimer", func(p *sim.Proc) {
		p.Sleep(8 * sim.Millisecond)
		h := b.PostRecv(p, a.Addr(), 42, 4096, 6)
		msg, st := b.WaitRecv(p, h)
		fmt.Printf("unexpected-queue claim: %v %q (uq hits: %d)\n",
			st, msg.Data, b.Stats().UnexpectedHit)
	})
	eng.RunUntil(sim.Time(sim.Second))
	fmt.Printf("A stats: %v\n", a.Stats())
	fmt.Printf("B stats: %v\n", b.Stats())
}
