// Quickstart: build a two-node cluster running the user-level sockets
// substrate, exchange a message, and print the measured round trip —
// then run the identical application code over kernel TCP to see the
// paper's headline gap.
package main

import (
	"fmt"

	"repro"
	"repro/internal/sim"
	"repro/internal/sock"
)

// echoOnce runs one connect / request / response / close exchange and
// returns the client-observed round-trip time. The same function serves
// both transports: applications written against the generic sockets API
// cannot tell the substrate from the kernel stack — which is the point
// of the paper.
func echoOnce(c *repro.Cluster) sim.Duration {
	var rtt sim.Duration
	c.Eng.Spawn("server", func(p *sim.Proc) {
		l, err := c.Nodes[0].Net.Listen(p, 80, 4)
		if err != nil {
			panic(err)
		}
		conn, err := l.Accept(p)
		if err != nil {
			panic(err)
		}
		if _, _, err := sock.ReadFull(p, conn, 64); err != nil {
			panic(err)
		}
		conn.Write(p, 64, "pong")
		conn.Close(p)
		l.Close(p)
	})
	c.Eng.Spawn("client", func(p *sim.Proc) {
		p.Sleep(10 * sim.Microsecond)
		conn, err := c.Nodes[1].Net.Dial(p, c.Addr(0), 80)
		if err != nil {
			panic(err)
		}
		start := p.Now()
		conn.Write(p, 64, "ping")
		if _, _, err := sock.ReadFull(p, conn, 64); err != nil {
			panic(err)
		}
		rtt = p.Now().Sub(start)
		conn.Close(p)
	})
	c.Run(repro.Seconds(5))
	return rtt
}

func main() {
	sub := echoOnce(repro.NewSubstrateCluster(2, nil))
	tcp := echoOnce(repro.NewTCPCluster(2))
	fmt.Printf("64-byte echo over the EMP substrate: %v\n", sub)
	fmt.Printf("64-byte echo over kernel TCP:        %v\n", tcp)
	fmt.Printf("speedup: %.1fx\n", float64(tcp)/float64(sub))
}
