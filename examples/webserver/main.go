// Web server example: the paper's Section 7.4 workload — one server,
// three clients, 16-byte requests, S-byte responses — under HTTP/1.0
// (connection per request) and HTTP/1.1 (eight requests per
// connection), over both transports.
package main

import (
	"fmt"

	"repro"
	"repro/internal/apps"
)

func main() {
	for _, S := range []int{4, 1024, 8192} {
		for _, keep := range []struct {
			label string
			reqs  int
		}{{"HTTP/1.0", 1}, {"HTTP/1.1", 8}} {
			subOpts := repro.DefaultOptions()
			subOpts.Credits = 4 // the paper's choice for this workload
			sub := apps.RunWeb(repro.NewSubstrateCluster(4, &subOpts), apps.DefaultWebConfig(S, keep.reqs))
			tcp := apps.RunWeb(repro.NewTCPCluster(4), apps.DefaultWebConfig(S, keep.reqs))
			if sub.Err != nil || tcp.Err != nil {
				fmt.Printf("S=%5d %s FAILED: sub=%v tcp=%v\n", S, keep.label, sub.Err, tcp.Err)
				continue
			}
			fmt.Printf("S=%5d %s  substrate %9v   TCP %9v   ratio %.1fx\n",
				S, keep.label, sub.AvgResponse, tcp.AvgResponse,
				float64(tcp.AvgResponse)/float64(sub.AvgResponse))
		}
	}
}
