// Key-value store example: the paper's future-work direction — a
// data-center commercial workload — as a memcached-style store with
// three clients on persistent connections, compared across transports
// and value sizes.
package main

import (
	"fmt"

	"repro"
	"repro/internal/apps"
)

func main() {
	fmt.Printf("%12s  %22s  %22s  %8s\n", "value bytes", "substrate (avg/p99)", "TCP (avg/p99)", "speedup")
	for _, size := range []int{64, 1024, 8192, 32 << 10} {
		sub := apps.RunKVStore(repro.NewSubstrateCluster(4, nil), apps.DefaultKVConfig(size))
		tcp := apps.RunKVStore(repro.NewTCPCluster(4), apps.DefaultKVConfig(size))
		if sub.Err != nil || tcp.Err != nil {
			fmt.Printf("%12d  FAILED: sub=%v tcp=%v\n", size, sub.Err, tcp.Err)
			continue
		}
		fmt.Printf("%12d  %10v/%-10v  %10v/%-10v  %7.2fx\n",
			size, sub.AvgLatency, sub.P99Latency, tcp.AvgLatency, tcp.P99Latency,
			float64(tcp.AvgLatency)/float64(sub.AvgLatency))
	}
}
