package repro_test

import (
	"fmt"

	"repro"
	"repro/internal/sock"
)

// Example shows the complete round trip: build a substrate cluster, run
// a server and a client as simulated processes, and read the virtual
// clock. The simulation is deterministic, so the printed timing is
// byte-for-byte reproducible (and verified by `go test`).
func Example() {
	c := repro.NewSubstrateCluster(2, nil)
	c.Eng.Spawn("server", func(p *repro.Proc) {
		l, _ := c.Nodes[0].Net.Listen(p, 80, 4)
		conn, _ := l.Accept(p)
		n, objs, _ := sock.ReadFull(p, conn, 16)
		fmt.Printf("server got %d bytes: %v\n", n, objs[0])
		conn.Write(p, 16, "pong")
		conn.Close(p)
	})
	c.Eng.Spawn("client", func(p *repro.Proc) {
		p.Sleep(repro.Microseconds(10))
		conn, _ := c.Nodes[1].Net.Dial(p, c.Addr(0), 80)
		start := p.Now()
		conn.Write(p, 16, "ping")
		_, objs, _ := sock.ReadFull(p, conn, 16)
		fmt.Printf("client got %v after %v\n", objs[0], p.Now().Sub(start))
		conn.Close(p)
	})
	c.Run(repro.Seconds(1))
	// Output:
	// server got 16 bytes: ping
	// client got pong after 87.228us
}

// ExampleDatagramOptions runs the same exchange in the paper's Datagram
// mode: message boundaries preserved, zero-copy receives.
func ExampleDatagramOptions() {
	opts := repro.DatagramOptions()
	c := repro.NewSubstrateCluster(2, &opts)
	c.Eng.Spawn("server", func(p *repro.Proc) {
		l, _ := c.Nodes[0].Net.Listen(p, 80, 4)
		conn, _ := l.Accept(p)
		n, _, _ := conn.Read(p, 1024)
		fmt.Printf("one datagram of %d bytes\n", n)
	})
	c.Eng.Spawn("client", func(p *repro.Proc) {
		p.Sleep(repro.Microseconds(10))
		conn, _ := c.Nodes[1].Net.Dial(p, c.Addr(0), 80)
		conn.Write(p, 300, nil)
	})
	c.Run(repro.Seconds(1))
	// Output:
	// one datagram of 300 bytes
}
